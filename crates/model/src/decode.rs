//! Inference-time decoding: greedy and beam search over the KV-cached
//! incremental engine.
//!
//! The encoder runs once per input. Generation then feeds **one token per
//! step** through [`decode_step`], which attends
//! over a
//! [`DecoderCache`] of per-layer self-attention K/V plus cross-attention
//! K/V projected once from the encoder output — O(T·L) attention work per
//! token. Beam search forks hypotheses by cloning the cache — with the
//! paged storage a clone shares every K/V page copy-on-write, so a fork
//! costs refcount bumps, not row copies — and selects top-k next tokens
//! with `select_nth_unstable_by`, O(V) instead of a full-vocabulary sort.
//!
//! [`greedy_decode_replay`] / [`beam_decode_replay`] keep the original
//! cache-free path — replaying the whole decoder prefix on a fresh tape
//! every step, O(T²·L) — as the reference implementation: the equivalence
//! tests below pin the cached engine's logits to it step by step, and the
//! `decode` criterion bench group measures the speedup against it.
//!
//! For serving N concurrent generations, see
//! [`BatchDecoder`](crate::batch::BatchDecoder), which runs this module's
//! greedy semantics over many requests in lockstep.
//!
//! # Example
//!
//! ```
//! use mpirical_model::transformer::build_params;
//! use mpirical_model::{decode_with, greedy_decode, DecodeOptions, ModelConfig};
//! use mpirical_tensor::ParamStore;
//!
//! let mut cfg = ModelConfig::tiny();
//! cfg.vocab_size = 16;
//! let mut store = ParamStore::new();
//! let params = build_params(&cfg, &mut store, 3);
//! let src = [1, 6, 7, 2]; // <sos> … <eos>
//!
//! // `beam: 1` decodes exactly the greedy tokens; `min_len` can force
//! // longer outputs by suppressing `<eos>`.
//! let greedy = greedy_decode(&store, &params, &cfg, &src, 12);
//! let opts = DecodeOptions { beam: 1, min_len: 0, ..Default::default() };
//! assert_eq!(decode_with(&store, &params, &cfg, &src, 12, opts), greedy);
//! ```

use crate::config::ModelConfig;
use crate::infer::{decode_step, decode_step_quant, DecoderCache, Precision, QuantDecoderWeights};
use crate::transformer::{decode as dec_forward, encode, ForwardMode, TransformerParams};
use crate::vocab::{EOS, SOS};
use mpirical_tensor::{ParamStore, Tape, Tensor};
use serde::{Deserialize, Serialize};

/// Generation knobs shared by the greedy and beam paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodeOptions {
    /// Beam width; `1` is greedy. Must be ≥ 1 — [`validate`](Self::validate)
    /// and every decode entry point reject 0 with a descriptive error.
    pub beam: usize,
    /// Suppress `<eos>` until at least this many tokens are generated
    /// (benchmarks use it to force fixed-length outputs).
    pub min_len: usize,
    /// Projection-kernel precision: full f32, or per-channel int8
    /// quantized weights ([`Precision::Int8`] — ~4× less weight traffic on
    /// the memory-bound decode step; accuracy contract enforced by
    /// `tests/quant_accuracy.rs`). Defaults on deserialize so artifacts
    /// saved before this field existed still load as f32.
    #[serde(default)]
    pub precision: Precision,
}

impl Default for DecodeOptions {
    fn default() -> Self {
        DecodeOptions {
            beam: 1,
            min_len: 0,
            precision: Precision::F32,
        }
    }
}

impl DecodeOptions {
    /// Check internal consistency: the one invalid configuration is a zero
    /// beam width (there is no such thing as a 0-hypothesis search).
    /// Artifact loading and service construction call this so a bad config
    /// fails loudly at the boundary instead of deep inside a decode loop.
    pub fn validate(&self) -> Result<(), String> {
        if self.beam == 0 {
            return Err("beam width must be at least 1 (got 0); use beam = 1 for greedy".into());
        }
        Ok(())
    }
}

/// Run the encoder once (inference mode, throwaway tape) and return its
/// output activations.
pub fn encode_source(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    src_ids: &[usize],
) -> Tensor {
    let mut tape = Tape::new();
    let enc_out = encode(
        &mut tape,
        store,
        params,
        cfg,
        src_ids,
        ForwardMode::inference(),
    );
    tape.value(enc_out).clone()
}

/// Greedy decoding: returns generated ids *without* the leading `<sos>` or
/// trailing `<eos>`.
pub fn greedy_decode(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    src_ids: &[usize],
    max_len: usize,
) -> Vec<usize> {
    decode_with(
        store,
        params,
        cfg,
        src_ids,
        max_len,
        DecodeOptions::default(),
    )
}

/// Beam-search decoding with length-normalized scoring. `beam = 1` is
/// equivalent to greedy. Returns the best hypothesis without `<sos>`/`<eos>`.
pub fn beam_decode(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    src_ids: &[usize],
    max_len: usize,
    beam: usize,
) -> Vec<usize> {
    decode_with(
        store,
        params,
        cfg,
        src_ids,
        max_len,
        DecodeOptions {
            beam,
            min_len: 0,
            ..Default::default()
        },
    )
}

/// KV-cached generation with explicit options: runs the encoder once, then
/// decodes via [`decode_encoded`].
pub fn decode_with(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    src_ids: &[usize],
    max_len: usize,
    opts: DecodeOptions,
) -> Vec<usize> {
    let enc_out = encode_source(store, params, cfg, src_ids);
    decode_encoded(store, params, cfg, &enc_out, max_len, opts)
}

/// KV-cached generation over an already-computed encoder output
/// (`[T_enc, d_model]`). This is the decode-only half of [`decode_with`]:
/// callers that manage encoder outputs themselves — the batched scheduler,
/// decode-only benchmarks, anything re-decoding the same source with
/// different options — use it to skip the encoder pass.
pub fn decode_encoded(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    enc_out: &Tensor,
    max_len: usize,
    opts: DecodeOptions,
) -> Vec<usize> {
    decode_encoded_prompted(store, params, cfg, enc_out, &[SOS], max_len, opts)
}

/// [`decode_encoded`] generalized to an arbitrary forced decoder prefix:
/// `prompt` is fed token-by-token (prefill), then greedy or beam generation
/// continues from it; the returned ids exclude the prompt. With
/// `prompt == [<sos>]` this is exactly [`decode_encoded`]. `max_len` counts
/// the prompt (a prompt at or past the cap generates nothing), `min_len`
/// counts generated tokens only.
///
/// This is the single-request reference semantics for every
/// [`BatchDecoder`](crate::batch::BatchDecoder) request — the scheduler's
/// equivalence tests and the property harness pin batched outputs to it.
pub fn decode_encoded_prompted(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    enc_out: &Tensor,
    prompt: &[usize],
    max_len: usize,
    opts: DecodeOptions,
) -> Vec<usize> {
    decode_prompted_impl(store, params, cfg, prompt, max_len, opts, None, || {
        DecoderCache::new(store, params, cfg, enc_out)
    })
}

/// [`decode_encoded_prompted`] running the **int8 quantized** projection
/// kernels against pre-quantized weights. Long-lived callers (the
/// assistant artifact, the service layer, benchmarks) quantize once via
/// [`QuantDecoderWeights::new`] and decode any number of requests through
/// this entry point; one-shot callers can instead set
/// [`DecodeOptions::precision`] to [`Precision::Int8`] on any decode entry
/// point and the weights are quantized per call.
#[allow(clippy::too_many_arguments)]
pub fn decode_encoded_prompted_quant(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    qw: &QuantDecoderWeights,
    enc_out: &Tensor,
    prompt: &[usize],
    max_len: usize,
    opts: DecodeOptions,
) -> Vec<usize> {
    let opts = DecodeOptions {
        precision: Precision::Int8,
        ..opts
    };
    decode_prompted_impl(store, params, cfg, prompt, max_len, opts, Some(qw), || {
        DecoderCache::new(store, params, cfg, enc_out)
    })
}

/// [`decode_encoded_prompted`], but returning **every** final hypothesis'
/// generated ids, best-first by length-normalized score. Greedy decoding
/// (`beam == 1`) yields exactly one hypothesis; beam search yields the full
/// final beam (up to `opts.beam` entries). The first entry is always
/// bitwise-identical to what [`decode_encoded_prompted`] returns — the
/// closed-loop verifier relies on this to re-rank candidates without
/// perturbing the unverified output.
#[allow(clippy::too_many_arguments)]
pub fn decode_encoded_prompted_all(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    enc_out: &Tensor,
    prompt: &[usize],
    max_len: usize,
    opts: DecodeOptions,
) -> Vec<Vec<usize>> {
    decode_prompted_all_impl(store, params, cfg, prompt, max_len, opts, None, || {
        DecoderCache::new(store, params, cfg, enc_out)
    })
}

/// [`decode_encoded_prompted_all`] running the int8 quantized projection
/// kernels against pre-quantized weights (see
/// [`decode_encoded_prompted_quant`]).
#[allow(clippy::too_many_arguments)]
pub fn decode_encoded_prompted_all_quant(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    qw: &QuantDecoderWeights,
    enc_out: &Tensor,
    prompt: &[usize],
    max_len: usize,
    opts: DecodeOptions,
) -> Vec<Vec<usize>> {
    let opts = DecodeOptions {
        precision: Precision::Int8,
        ..opts
    };
    decode_prompted_all_impl(store, params, cfg, prompt, max_len, opts, Some(qw), || {
        DecoderCache::new(store, params, cfg, enc_out)
    })
}

/// [`decode_encoded_prompted`] on the **contiguous** reference cache layout
/// ([`DecoderCache::new_contiguous`]). Exists for the property-test harness
/// and benchmarks, which pin the paged engine's outputs (and, step by step,
/// its logits) to this path bitwise.
pub fn decode_encoded_prompted_contiguous(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    enc_out: &Tensor,
    prompt: &[usize],
    max_len: usize,
    opts: DecodeOptions,
) -> Vec<usize> {
    decode_prompted_impl(store, params, cfg, prompt, max_len, opts, None, || {
        DecoderCache::new_contiguous(store, params, cfg, enc_out)
    })
}

/// One decode step at the options' precision: f32 [`decode_step`] or
/// quantized [`decode_step_quant`]. The single dispatch point for the
/// whole single-request engine (prefill, greedy, beam), so the two
/// precisions can only differ inside the projection kernels.
fn step_at(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    qw: Option<&QuantDecoderWeights>,
    cache: &mut DecoderCache,
    token: usize,
) -> Vec<f32> {
    match qw {
        None => decode_step(store, params, cfg, cache, token),
        Some(q) => decode_step_quant(store, params, cfg, q, cache, token),
    }
}

/// Shared prompted-generation driver, parameterized over the cache layout
/// and projection precision (one code path ⇒ paged and contiguous, f32 and
/// int8, can only differ inside `decode_step`'s kernels, which the
/// storage-equivalence and quant-accuracy tests cover).
#[allow(clippy::too_many_arguments)]
fn decode_prompted_impl(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    prompt: &[usize],
    max_len: usize,
    opts: DecodeOptions,
    qw: Option<&QuantDecoderWeights>,
    new_cache: impl Fn() -> DecoderCache,
) -> Vec<usize> {
    decode_prompted_all_impl(store, params, cfg, prompt, max_len, opts, qw, new_cache)
        .into_iter()
        .next()
        .unwrap_or_default()
}

/// [`decode_prompted_impl`], but returning *every* hypothesis' generated
/// ids best-first instead of only the winner. Greedy decoding yields a
/// single hypothesis; beam search yields the final ranked beam. `ranked[0]`
/// is always bitwise-identical to what [`decode_prompted_impl`] returns.
#[allow(clippy::too_many_arguments)]
fn decode_prompted_all_impl(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    prompt: &[usize],
    max_len: usize,
    opts: DecodeOptions,
    qw: Option<&QuantDecoderWeights>,
    new_cache: impl Fn() -> DecoderCache,
) -> Vec<Vec<usize>> {
    assert!(
        opts.beam >= 1,
        "beam width must be at least 1 (got 0); use beam = 1 for greedy"
    );
    assert!(!prompt.is_empty(), "prompt must hold at least <sos>");
    // Quantize on the fly when the options ask for int8 and the caller did
    // not hand over prebuilt weights (one pass over the decoder weights —
    // long-lived callers use `decode_encoded_prompted_quant` to avoid it).
    let built;
    let qw = match (opts.precision, qw) {
        (Precision::F32, _) => None,
        (Precision::Int8, Some(q)) => Some(q),
        (Precision::Int8, None) => {
            built = QuantDecoderWeights::new(store, params);
            Some(&built)
        }
    };
    let limit = max_len.min(cfg.max_dec_len);
    if prompt.len() >= limit {
        return vec![Vec::new()];
    }
    let mut cache = new_cache();
    for &tok in &prompt[..prompt.len() - 1] {
        step_at(store, params, cfg, qw, &mut cache, tok);
    }
    if opts.beam == 1 {
        vec![greedy_cached(
            store,
            params,
            cfg,
            qw,
            cache,
            prompt,
            limit,
            opts.min_len,
        )]
    } else {
        beam_cached(store, params, cfg, qw, cache, prompt, limit, opts)
    }
}

/// Argmax of a logits row, optionally banning `<eos>`. Shared with the
/// batched scheduler so lockstep token selection is identical to greedy.
pub(crate) fn argmax_token(logits: &[f32], ban_eos: bool) -> usize {
    let mut best = usize::MAX;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in logits.iter().enumerate() {
        if ban_eos && i == EOS {
            continue;
        }
        if v > best_v || best == usize::MAX {
            best = i;
            best_v = v;
        }
    }
    best
}

/// Indices of the `k` largest entries of `row`, best first — O(V) selection
/// plus an O(k log k) sort of the survivors.
fn top_k_indices(row: &[f32], k: usize, ban_eos: bool) -> Vec<usize> {
    let desc = |&a: &usize, &b: &usize| {
        row[b]
            .partial_cmp(&row[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    };
    let mut idx: Vec<usize> = (0..row.len()).filter(|&i| !(ban_eos && i == EOS)).collect();
    let k = k.min(idx.len());
    if k == 0 {
        return idx;
    }
    if k < idx.len() {
        idx.select_nth_unstable_by(k - 1, desc);
        idx.truncate(k);
    }
    idx.sort_by(desc);
    idx
}

#[allow(clippy::too_many_arguments)]
fn greedy_cached(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    qw: Option<&QuantDecoderWeights>,
    mut cache: DecoderCache,
    prompt: &[usize],
    limit: usize,
    min_len: usize,
) -> Vec<usize> {
    let mut ids = prompt.to_vec();
    while ids.len() < limit {
        let logits = step_at(store, params, cfg, qw, &mut cache, *ids.last().unwrap());
        let ban_eos = ids.len() - prompt.len() < min_len;
        let tok = argmax_token(&logits, ban_eos);
        if tok == EOS {
            break;
        }
        ids.push(tok);
    }
    ids.split_off(prompt.len())
}

/// A beam-search hypothesis carrying its own decoder cache.
///
/// `pub(crate)` because the batched scheduler
/// ([`BatchDecoder`](crate::batch::BatchDecoder)) runs the *same* beam
/// semantics over lockstep-stepped hypotheses — sharing this type and
/// [`expand_beams`] is what guarantees batched beam output is identical to
/// the single-request path.
pub(crate) struct Hypothesis {
    pub(crate) ids: Vec<usize>,
    pub(crate) log_prob: f32,
    pub(crate) done: bool,
    /// Cache state covering `ids[..len-1]`; the newest id is fed on the
    /// next expansion (`None` once done — a finished cache is dead weight).
    pub(crate) cache: Option<DecoderCache>,
}

impl Hypothesis {
    /// The root hypothesis: a prompt and its prefilled cache (covering
    /// `prompt[..len-1]`).
    pub(crate) fn root(prompt: &[usize], cache: DecoderCache) -> Hypothesis {
        Hypothesis {
            ids: prompt.to_vec(),
            log_prob: 0.0,
            done: false,
            cache: Some(cache),
        }
    }

    /// Length-normalized log-prob; shared with the batched scheduler's
    /// partial-output polls (the "current best hypothesis" of a beam
    /// request uses the same ranking as final selection).
    pub(crate) fn score(&self) -> f32 {
        self.log_prob / self.ids.len() as f32
    }
}

/// One beam-search expansion: given each hypothesis' freshly-stepped
/// next-token logits (`None` for finished hypotheses, whose candidates
/// carry forward unchanged), score `beam` continuations per live
/// hypothesis, keep the global best `beam` by length-normalized log-prob,
/// and hand out parent caches survivor-first (the last surviving child
/// *moves* the stepped cache, earlier ones clone it — with paged storage a
/// clone is a COW fork, so an expansion never copies K/V rows).
///
/// Shared by [`beam_cached`] (which steps hypotheses one at a time) and the
/// batched scheduler (which steps all live hypotheses of all requests in
/// lockstep): identical candidate ordering, tie-breaking, and cache
/// handoff by construction.
pub(crate) fn expand_beams(
    beams: Vec<Hypothesis>,
    rows: &[Option<&[f32]>],
    beam: usize,
    min_len: usize,
    prompt_len: usize,
) -> Vec<Hypothesis> {
    assert_eq!(rows.len(), beams.len(), "one logits row per hypothesis");

    // A proposed expansion, scored before any cache is copied: caches are
    // moved/cloned only for the `beam` candidates that survive truncation
    // (at most `beam - 1` clones per step, and clones share K/V pages
    // copy-on-write plus the immutable cross-attention K/V).
    struct Candidate {
        parent: usize,
        /// Token to append (`None` for finished hypotheses).
        token: Option<usize>,
        log_prob: f32,
        len: usize,
        done: bool,
    }
    impl Candidate {
        fn score(&self) -> f32 {
            self.log_prob / self.len as f32
        }
    }

    let mut beams = beams;
    let mut candidates: Vec<Candidate> = Vec::new();
    for (parent, (h, row)) in beams.iter().zip(rows).enumerate() {
        let Some(logits) = row else {
            candidates.push(Candidate {
                parent,
                token: None,
                log_prob: h.log_prob,
                len: h.ids.len(),
                done: true,
            });
            continue;
        };
        // Log-softmax normalizer of the row.
        let m = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let z: f32 = logits.iter().map(|x| (x - m).exp()).sum();
        let log_z = m + z.ln();
        let ban_eos = h.ids.len() - prompt_len < min_len;
        for &tok in &top_k_indices(logits, beam, ban_eos) {
            let done = tok == EOS;
            candidates.push(Candidate {
                parent,
                token: (!done).then_some(tok),
                log_prob: h.log_prob + (logits[tok] - log_z),
                len: h.ids.len() + usize::from(!done),
                done,
            });
        }
    }
    // Keep the best `beam` by length-normalized log-prob.
    candidates.sort_by(|a, b| {
        b.score()
            .partial_cmp(&a.score())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    candidates.truncate(beam);

    // Hand out parent caches: the last surviving child of a parent moves
    // the stepped cache, earlier ones clone (COW-fork) it.
    let mut live_children = vec![0usize; beams.len()];
    for c in candidates.iter().filter(|c| !c.done) {
        live_children[c.parent] += 1;
    }
    let mut parent_caches: Vec<Option<DecoderCache>> =
        beams.iter_mut().map(|h| h.cache.take()).collect();
    let mut next = Vec::with_capacity(candidates.len());
    for c in candidates {
        let mut ids = beams[c.parent].ids.clone();
        if let Some(tok) = c.token {
            ids.push(tok);
        }
        let cache = if c.done {
            None
        } else {
            live_children[c.parent] -= 1;
            if live_children[c.parent] == 0 {
                parent_caches[c.parent].take()
            } else {
                parent_caches[c.parent].clone()
            }
        };
        next.push(Hypothesis {
            ids,
            log_prob: c.log_prob,
            done: c.done,
            cache,
        });
    }
    next
}

/// Final beam ranking: every hypothesis' generated ids (prompt stripped),
/// best-first by length-normalized score. Shared with the batched scheduler
/// so single-request and batched rankings agree element-for-element.
///
/// Ties break toward the *higher* original index, which keeps `ranked[0]`
/// bitwise-identical to the historical `max_by` selection (`max_by` returns
/// the last maximum).
pub(crate) fn ranked_hypothesis_ids(beams: Vec<Hypothesis>, prompt_len: usize) -> Vec<Vec<usize>> {
    let mut indexed: Vec<(usize, Hypothesis)> = beams.into_iter().enumerate().collect();
    indexed.sort_by(|(ia, a), (ib, b)| {
        b.score()
            .partial_cmp(&a.score())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(ib.cmp(ia))
    });
    indexed
        .into_iter()
        .map(|(_, h)| {
            let mut ids = h.ids;
            ids.split_off(prompt_len)
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn beam_cached(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    qw: Option<&QuantDecoderWeights>,
    cache: DecoderCache,
    prompt: &[usize],
    limit: usize,
    opts: DecodeOptions,
) -> Vec<Vec<usize>> {
    let prompt_len = prompt.len();
    let mut beams = vec![Hypothesis::root(prompt, cache)];
    for _ in prompt_len..limit {
        if beams.iter().all(|h| h.done) {
            break;
        }
        // Step every live hypothesis once, in place.
        let rows: Vec<Option<Vec<f32>>> = beams
            .iter_mut()
            .map(|h| {
                if h.done {
                    return None;
                }
                let cache = h.cache.as_mut().expect("live hypothesis has a cache");
                Some(step_at(
                    store,
                    params,
                    cfg,
                    qw,
                    cache,
                    *h.ids.last().unwrap(),
                ))
            })
            .collect();
        let row_refs: Vec<Option<&[f32]>> = rows.iter().map(|r| r.as_deref()).collect();
        beams = expand_beams(beams, &row_refs, opts.beam, opts.min_len, prompt_len);
    }
    ranked_hypothesis_ids(beams, prompt_len)
}

// ---------------------------------------------------------------------------
// Reference implementation: full prefix replay, no cache
// ---------------------------------------------------------------------------

/// Greedy decoding by full prefix replay (no KV cache — O(T²·L)). Reference
/// implementation and benchmark baseline for [`greedy_decode`].
pub fn greedy_decode_replay(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    src_ids: &[usize],
    max_len: usize,
) -> Vec<usize> {
    replay_decode_with(
        store,
        params,
        cfg,
        src_ids,
        max_len,
        DecodeOptions::default(),
    )
}

/// Beam-search decoding by full prefix replay. Reference implementation and
/// benchmark baseline for [`beam_decode`].
pub fn beam_decode_replay(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    src_ids: &[usize],
    max_len: usize,
    beam: usize,
) -> Vec<usize> {
    replay_decode_with(
        store,
        params,
        cfg,
        src_ids,
        max_len,
        DecodeOptions {
            beam,
            min_len: 0,
            ..Default::default()
        },
    )
}

/// Replay-path generation with explicit options (benchmarks force fixed
/// lengths through `min_len` on both engines for a fair comparison).
pub fn replay_decode_with(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    src_ids: &[usize],
    max_len: usize,
    opts: DecodeOptions,
) -> Vec<usize> {
    assert!(
        opts.beam >= 1,
        "beam width must be at least 1 (got 0); use beam = 1 for greedy"
    );
    let enc_val = encode_source(store, params, cfg, src_ids);
    let limit = max_len.min(cfg.max_dec_len);

    if opts.beam == 1 {
        let mut out = vec![SOS];
        while out.len() < limit {
            let logits = replay_logits(store, params, cfg, &enc_val, &out);
            let ban_eos = out.len() - 1 < opts.min_len;
            let tok = argmax_token(&logits, ban_eos);
            if tok == EOS {
                break;
            }
            out.push(tok);
        }
        out.remove(0);
        return out;
    }

    struct ReplayHyp {
        ids: Vec<usize>,
        log_prob: f32,
        done: bool,
    }
    let mut beams = vec![ReplayHyp {
        ids: vec![SOS],
        log_prob: 0.0,
        done: false,
    }];
    for _ in 1..limit {
        if beams.iter().all(|h| h.done) {
            break;
        }
        let mut candidates: Vec<ReplayHyp> = Vec::new();
        for h in &beams {
            if h.done {
                candidates.push(ReplayHyp {
                    ids: h.ids.clone(),
                    log_prob: h.log_prob,
                    done: true,
                });
                continue;
            }
            let logits = replay_logits(store, params, cfg, &enc_val, &h.ids);
            let m = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let z: f32 = logits.iter().map(|x| (x - m).exp()).sum();
            let log_z = m + z.ln();
            let ban_eos = h.ids.len() - 1 < opts.min_len;
            for &tok in &top_k_indices(&logits, opts.beam, ban_eos) {
                let mut ids = h.ids.clone();
                let done = tok == EOS;
                if !done {
                    ids.push(tok);
                }
                candidates.push(ReplayHyp {
                    ids,
                    log_prob: h.log_prob + (logits[tok] - log_z),
                    done,
                });
            }
        }
        candidates.sort_by(|a, b| {
            let sa = a.log_prob / a.ids.len() as f32;
            let sb = b.log_prob / b.ids.len() as f32;
            sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
        });
        candidates.truncate(opts.beam);
        beams = candidates;
    }
    let mut best = beams
        .into_iter()
        .max_by(|a, b| {
            let sa = a.log_prob / a.ids.len() as f32;
            let sb = b.log_prob / b.ids.len() as f32;
            sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|h| h.ids)
        .unwrap_or_else(|| vec![SOS]);
    best.remove(0);
    best
}

/// Last-row logits of a full decoder replay over `dec_ids` (fresh tape).
pub fn replay_logits(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    enc_val: &Tensor,
    dec_ids: &[usize],
) -> Vec<f32> {
    let mut tape = Tape::new();
    let enc_const = tape.constant(enc_val.clone());
    let logits = dec_forward(
        &mut tape,
        store,
        params,
        cfg,
        enc_const,
        dec_ids,
        ForwardMode::inference(),
    );
    let v = cfg.vocab_size;
    let rows = dec_ids.len();
    tape.value(logits).data[(rows - 1) * v..rows * v].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train, Example, TrainConfig};
    use crate::transformer::build_params;

    /// Train a tiny copy model, then decode.
    fn trained_copy_model() -> (ModelConfig, ParamStore, TransformerParams) {
        let mut cfg = ModelConfig::tiny();
        cfg.vocab_size = 16;
        let mut store = ParamStore::new();
        let params = build_params(&cfg, &mut store, 11);
        let mut data = Vec::new();
        for a in 6..12usize {
            for b in 6..12usize {
                data.push(Example {
                    src: vec![SOS, a, b, EOS],
                    tgt: vec![SOS, a, b],
                });
            }
        }
        let tcfg = TrainConfig {
            epochs: 30,
            batch_size: 12,
            lr: 3e-3,
            warmup_steps: 10,
            threads: 1,
            validate: false,
            ..Default::default()
        };
        train(&mut store, &params, &cfg, &data, &[], &tcfg, |_| {});
        (cfg, store, params)
    }

    #[test]
    fn greedy_decodes_learned_mapping() {
        let (cfg, store, params) = trained_copy_model();
        let mut correct = 0;
        let mut total = 0;
        for a in 6..12usize {
            for b in 6..12usize {
                let out = greedy_decode(&store, &params, &cfg, &[SOS, a, b, EOS], 8);
                total += 1;
                if out == vec![a, b] {
                    correct += 1;
                }
            }
        }
        assert!(
            correct * 10 >= total * 8,
            "copy accuracy too low: {correct}/{total}"
        );
    }

    #[test]
    fn greedy_respects_max_len() {
        let (cfg, store, params) = trained_copy_model();
        let out = greedy_decode(&store, &params, &cfg, &[SOS, 7, 8, EOS], 2);
        assert!(out.len() <= 2);
    }

    #[test]
    fn beam_one_matches_greedy() {
        let (cfg, store, params) = trained_copy_model();
        for a in 6..9usize {
            let src = [SOS, a, a + 1, EOS];
            let g = greedy_decode(&store, &params, &cfg, &src, 8);
            let b = beam_decode(&store, &params, &cfg, &src, 8, 1);
            assert_eq!(g, b, "beam=1 must equal greedy for src {src:?}");
        }
    }

    #[test]
    fn wider_beam_never_scores_worse() {
        // Beam search with width 3 finds a hypothesis with at least the
        // greedy hypothesis' probability; on a well-trained copy task both
        // should emit the same (correct) output.
        let (cfg, store, params) = trained_copy_model();
        let src = [SOS, 9, 10, EOS];
        let g = greedy_decode(&store, &params, &cfg, &src, 8);
        let b = beam_decode(&store, &params, &cfg, &src, 8, 3);
        assert_eq!(g, b);
    }

    // -- cache equivalence -------------------------------------------------

    /// Cached incremental logits must match full-replay logits at every
    /// step of a forced token sequence.
    #[test]
    fn cached_logits_match_replay_logits_each_step() {
        let (cfg, store, params) = trained_copy_model();
        let src = [SOS, 7, 10, EOS];
        let enc_out = encode_source(&store, &params, &cfg, &src);
        let forced = [SOS, 7, 10, 9, 6, 11, 8]; // arbitrary prefix walk
        let mut cache = DecoderCache::new(&store, &params, &cfg, &enc_out);
        for step in 1..=forced.len() {
            let prefix = &forced[..step];
            let cached = decode_step(&store, &params, &cfg, &mut cache, prefix[step - 1]);
            let replayed = replay_logits(&store, &params, &cfg, &enc_out, prefix);
            assert_eq!(cached.len(), replayed.len());
            for (i, (c, r)) in cached.iter().zip(&replayed).enumerate() {
                assert!(
                    (c - r).abs() < 1e-4,
                    "step {step} logit {i}: cached {c} vs replay {r}"
                );
            }
        }
    }

    /// The cached decoders must emit exactly the replay decoders' outputs.
    #[test]
    fn cached_decoding_matches_replay_decoding() {
        let (cfg, store, params) = trained_copy_model();
        for a in 6..10usize {
            let src = [SOS, a, a + 2, EOS];
            assert_eq!(
                greedy_decode(&store, &params, &cfg, &src, 10),
                greedy_decode_replay(&store, &params, &cfg, &src, 10),
                "greedy divergence for {src:?}"
            );
            for beam in [2usize, 3] {
                assert_eq!(
                    beam_decode(&store, &params, &cfg, &src, 10, beam),
                    beam_decode_replay(&store, &params, &cfg, &src, 10, beam),
                    "beam={beam} divergence for {src:?}"
                );
            }
        }
    }

    /// Forced max-length generation exercises the cache at its capacity
    /// bound without panicking, on both engines.
    #[test]
    fn cache_handles_max_length_sequences() {
        let (cfg, store, params) = trained_copy_model();
        let src = [SOS, 6, 7, EOS];
        let opts = DecodeOptions {
            beam: 1,
            min_len: cfg.max_dec_len,
            ..Default::default()
        };
        let cached = decode_with(&store, &params, &cfg, &src, usize::MAX, opts);
        assert_eq!(cached.len(), cfg.max_dec_len - 1, "filled to the cap");
        let replayed = replay_decode_with(&store, &params, &cfg, &src, usize::MAX, opts);
        assert_eq!(cached, replayed);
    }

    #[test]
    fn min_len_suppresses_early_eos() {
        let (cfg, store, params) = trained_copy_model();
        let src = [SOS, 6, 7, EOS];
        // Unconstrained greedy stops after ~2 tokens on the copy task.
        let free = greedy_decode(&store, &params, &cfg, &src, 12);
        assert!(free.len() < 6);
        let forced = decode_with(
            &store,
            &params,
            &cfg,
            &src,
            12,
            DecodeOptions {
                beam: 1,
                min_len: 6,
                ..Default::default()
            },
        );
        assert!(forced.len() >= 6, "min_len must force length: {forced:?}");
        assert!(!forced.contains(&EOS));
    }

    /// Prompted decoding with `[<sos>]` is exactly the unprompted path, for
    /// both engines and storages.
    #[test]
    fn prompted_with_sos_matches_unprompted() {
        let (cfg, store, params) = trained_copy_model();
        let src = [SOS, 8, 11, EOS];
        let enc_out = encode_source(&store, &params, &cfg, &src);
        for beam in [1usize, 3] {
            let opts = DecodeOptions {
                beam,
                min_len: 0,
                ..Default::default()
            };
            let plain = decode_encoded(&store, &params, &cfg, &enc_out, 10, opts);
            let prompted =
                decode_encoded_prompted(&store, &params, &cfg, &enc_out, &[SOS], 10, opts);
            let contiguous = decode_encoded_prompted_contiguous(
                &store,
                &params,
                &cfg,
                &enc_out,
                &[SOS],
                10,
                opts,
            );
            assert_eq!(plain, prompted, "beam={beam}");
            assert_eq!(plain, contiguous, "beam={beam} contiguous reference");
        }
    }

    /// A longer forced prefix: the continuation excludes the prompt, stops
    /// within the cap, and the paged path equals the contiguous reference.
    #[test]
    fn prompted_continuation_respects_prompt_and_cap() {
        let (cfg, store, params) = trained_copy_model();
        let src = [SOS, 7, 9, EOS];
        let enc_out = encode_source(&store, &params, &cfg, &src);
        let prompt = [SOS, 7, 9, 6];
        for beam in [1usize, 2] {
            let opts = DecodeOptions {
                beam,
                min_len: 2,
                ..Default::default()
            };
            let out = decode_encoded_prompted(&store, &params, &cfg, &enc_out, &prompt, 12, opts);
            assert!(out.len() + prompt.len() <= 12);
            assert!(out.len() >= 2, "min_len counts generated tokens");
            assert_eq!(
                out,
                decode_encoded_prompted_contiguous(
                    &store, &params, &cfg, &enc_out, &prompt, 12, opts,
                ),
                "beam={beam}"
            );
        }
        // Prompt at the cap: nothing generated.
        let at_cap = decode_encoded_prompted(
            &store,
            &params,
            &cfg,
            &enc_out,
            &prompt,
            4,
            DecodeOptions::default(),
        );
        assert!(at_cap.is_empty());
    }

    /// Regression (satellite fix): `beam = 0` is rejected with a
    /// descriptive message at every decode entry point, and
    /// `DecodeOptions::validate` reports it as an `Err`.
    #[test]
    fn zero_beam_is_invalid_and_validate_says_why() {
        let opts = DecodeOptions {
            beam: 0,
            min_len: 0,
            ..Default::default()
        };
        let err = opts.validate().unwrap_err();
        assert!(err.contains("beam width must be at least 1"), "{err}");
        assert!(DecodeOptions::default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "beam width must be at least 1")]
    fn zero_beam_cached_decode_panics_descriptively() {
        let (cfg, store, params) = trained_copy_model();
        decode_with(
            &store,
            &params,
            &cfg,
            &[SOS, 6, 7, EOS],
            8,
            DecodeOptions {
                beam: 0,
                min_len: 0,
                ..Default::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "beam width must be at least 1")]
    fn zero_beam_replay_decode_panics_descriptively() {
        let (cfg, store, params) = trained_copy_model();
        replay_decode_with(
            &store,
            &params,
            &cfg,
            &[SOS, 6, 7, EOS],
            8,
            DecodeOptions {
                beam: 0,
                min_len: 0,
                ..Default::default()
            },
        );
    }

    /// The quantized single-request engine is self-consistent across its
    /// entry points and cache layouts: on-the-fly quantization
    /// (`precision: Int8`), prebuilt weights
    /// (`decode_encoded_prompted_quant`), and the contiguous reference
    /// layout all emit identical tokens, for greedy and beam.
    #[test]
    fn quant_entry_points_and_layouts_agree() {
        let (cfg, store, params) = trained_copy_model();
        let src = [SOS, 8, 11, EOS];
        let enc_out = encode_source(&store, &params, &cfg, &src);
        let qw = crate::infer::QuantDecoderWeights::new(&store, &params);
        for beam in [1usize, 3] {
            let opts = DecodeOptions {
                beam,
                min_len: 2,
                precision: Precision::Int8,
            };
            let on_the_fly =
                decode_encoded_prompted(&store, &params, &cfg, &enc_out, &[SOS], 10, opts);
            let prebuilt = decode_encoded_prompted_quant(
                &store,
                &params,
                &cfg,
                &qw,
                &enc_out,
                &[SOS],
                10,
                opts,
            );
            let contiguous = decode_encoded_prompted_contiguous(
                &store,
                &params,
                &cfg,
                &enc_out,
                &[SOS],
                10,
                opts,
            );
            assert_eq!(on_the_fly, prebuilt, "beam={beam}");
            assert_eq!(on_the_fly, contiguous, "beam={beam} contiguous");
            assert!(!on_the_fly.is_empty(), "min_len forces generation");
        }
    }

    #[test]
    fn top_k_selects_largest() {
        let row = [0.1f32, 5.0, -2.0, 3.0, 4.0];
        assert_eq!(top_k_indices(&row, 3, false), vec![1, 4, 3]);
        assert_eq!(top_k_indices(&row, 1, false), vec![1]);
        assert_eq!(top_k_indices(&row, 10, false).len(), 5);
        // Banning EOS (index 2) removes it even when k covers everything.
        assert!(!top_k_indices(&row, 10, true).contains(&EOS));
    }
}
