//! Inference-time decoding: greedy and beam search.
//!
//! The encoder runs once per input; each decoding step replays the decoder
//! prefix (no KV cache — quadratic in output length, which is fine at the
//! ≤320-token scale the paper targets and keeps the code auditable).

use crate::config::ModelConfig;
use crate::transformer::{decode as dec_forward, encode, ForwardMode, TransformerParams};
use crate::vocab::{EOS, SOS};
use mpirical_tensor::{ParamStore, Tape};

/// Greedy decoding: returns generated ids *without* the leading `<sos>` or
/// trailing `<eos>`.
pub fn greedy_decode(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    src_ids: &[usize],
    max_len: usize,
) -> Vec<usize> {
    let mut tape = Tape::new();
    let enc_out = encode(&mut tape, store, params, cfg, src_ids, ForwardMode::inference());
    let enc_val = tape.value(enc_out).clone();

    let mut out = vec![SOS];
    let limit = max_len.min(cfg.max_dec_len);
    while out.len() < limit {
        let mut step_tape = Tape::new();
        let enc_const = step_tape.constant(enc_val.clone());
        let logits = dec_forward(
            &mut step_tape,
            store,
            params,
            cfg,
            enc_const,
            &out,
            ForwardMode::inference(),
        );
        let v = cfg.vocab_size;
        let last = tape_last_row_argmax(step_tape.value(logits).data.as_slice(), v, out.len());
        if last == EOS {
            break;
        }
        out.push(last);
    }
    out.remove(0); // drop <sos>
    out
}

fn tape_last_row_argmax(logits: &[f32], vocab: usize, rows: usize) -> usize {
    let row = &logits[(rows - 1) * vocab..rows * vocab];
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(EOS)
}

/// A beam-search hypothesis.
#[derive(Debug, Clone)]
struct Hypothesis {
    ids: Vec<usize>,
    log_prob: f32,
    done: bool,
}

/// Beam-search decoding with length-normalized scoring. `beam = 1` is
/// equivalent to greedy. Returns the best hypothesis without `<sos>`/`<eos>`.
pub fn beam_decode(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    src_ids: &[usize],
    max_len: usize,
    beam: usize,
) -> Vec<usize> {
    assert!(beam >= 1);
    let mut tape = Tape::new();
    let enc_out = encode(&mut tape, store, params, cfg, src_ids, ForwardMode::inference());
    let enc_val = tape.value(enc_out).clone();

    let mut beams = vec![Hypothesis {
        ids: vec![SOS],
        log_prob: 0.0,
        done: false,
    }];
    let limit = max_len.min(cfg.max_dec_len);

    for _ in 1..limit {
        if beams.iter().all(|h| h.done) {
            break;
        }
        let mut candidates: Vec<Hypothesis> = Vec::new();
        for h in &beams {
            if h.done {
                candidates.push(h.clone());
                continue;
            }
            let mut step_tape = Tape::new();
            let enc_const = step_tape.constant(enc_val.clone());
            let logits = dec_forward(
                &mut step_tape,
                store,
                params,
                cfg,
                enc_const,
                &h.ids,
                ForwardMode::inference(),
            );
            let v = cfg.vocab_size;
            let rows = h.ids.len();
            let row = &step_tape.value(logits).data[(rows - 1) * v..rows * v];
            // log-softmax of the last row.
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let z: f32 = row.iter().map(|x| (x - m).exp()).sum();
            let log_z = m + z.ln();
            // Top-`beam` next tokens.
            let mut idx: Vec<usize> = (0..v).collect();
            idx.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap_or(std::cmp::Ordering::Equal));
            for &tok in idx.iter().take(beam) {
                let mut ids = h.ids.clone();
                let lp = h.log_prob + (row[tok] - log_z);
                let done = tok == EOS;
                if !done {
                    ids.push(tok);
                }
                candidates.push(Hypothesis {
                    ids,
                    log_prob: lp,
                    done,
                });
            }
        }
        // Keep the best `beam` by length-normalized log-prob.
        candidates.sort_by(|a, b| {
            let sa = a.log_prob / a.ids.len() as f32;
            let sb = b.log_prob / b.ids.len() as f32;
            sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
        });
        candidates.truncate(beam);
        beams = candidates;
    }

    let mut best = beams
        .into_iter()
        .max_by(|a, b| {
            let sa = a.log_prob / a.ids.len() as f32;
            let sb = b.log_prob / b.ids.len() as f32;
            sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|h| h.ids)
        .unwrap_or_else(|| vec![SOS]);
    best.remove(0);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train, Example, TrainConfig};
    use crate::transformer::build_params;

    /// Train a tiny copy model, then decode.
    fn trained_copy_model() -> (ModelConfig, ParamStore, TransformerParams) {
        let mut cfg = ModelConfig::tiny();
        cfg.vocab_size = 16;
        let mut store = ParamStore::new();
        let params = build_params(&cfg, &mut store, 11);
        let mut data = Vec::new();
        for a in 6..12usize {
            for b in 6..12usize {
                data.push(Example {
                    src: vec![SOS, a, b, EOS],
                    tgt: vec![SOS, a, b],
                });
            }
        }
        let tcfg = TrainConfig {
            epochs: 30,
            batch_size: 12,
            lr: 3e-3,
            warmup_steps: 10,
            threads: 1,
            validate: false,
            ..Default::default()
        };
        train(&mut store, &params, &cfg, &data, &[], &tcfg, |_| {});
        (cfg, store, params)
    }

    #[test]
    fn greedy_decodes_learned_mapping() {
        let (cfg, store, params) = trained_copy_model();
        let mut correct = 0;
        let mut total = 0;
        for a in 6..12usize {
            for b in 6..12usize {
                let out = greedy_decode(&store, &params, &cfg, &[SOS, a, b, EOS], 8);
                total += 1;
                if out == vec![a, b] {
                    correct += 1;
                }
            }
        }
        assert!(
            correct * 10 >= total * 8,
            "copy accuracy too low: {correct}/{total}"
        );
    }

    #[test]
    fn greedy_respects_max_len() {
        let (cfg, store, params) = trained_copy_model();
        let out = greedy_decode(&store, &params, &cfg, &[SOS, 7, 8, EOS], 2);
        assert!(out.len() <= 2);
    }

    #[test]
    fn beam_one_matches_greedy() {
        let (cfg, store, params) = trained_copy_model();
        for a in 6..9usize {
            let src = [SOS, a, a + 1, EOS];
            let g = greedy_decode(&store, &params, &cfg, &src, 8);
            let b = beam_decode(&store, &params, &cfg, &src, 8, 1);
            assert_eq!(g, b, "beam=1 must equal greedy for src {src:?}");
        }
    }

    #[test]
    fn wider_beam_never_scores_worse() {
        // Beam search with width 3 finds a hypothesis with at least the
        // greedy hypothesis' probability; on a well-trained copy task both
        // should emit the same (correct) output.
        let (cfg, store, params) = trained_copy_model();
        let src = [SOS, 9, 10, EOS];
        let g = greedy_decode(&store, &params, &cfg, &src, 8);
        let b = beam_decode(&store, &params, &cfg, &src, 8, 3);
        assert_eq!(g, b);
    }
}
