//! Sharded multi-core serving engine: N [`BatchDecoder`] workers behind one
//! admission front-end.
//!
//! One `BatchDecoder` already overlaps N requests in lockstep, but a single
//! scheduler is one thread: aggregate throughput stops at one core (plus
//! whatever the fused kernels parallelize internally). The [`Engine`] scales
//! out instead: each worker thread owns a private `BatchDecoder` scheduler
//! — its own lanes and scheduler clock — while all workers draw pages from
//! **one shared [`PagePool`]** and prefill snapshots from **one shared
//! radix [`PrefixIndex`]** (see [`crate::radix`]): a prefix prefilled by
//! any worker is COW-shared by a matching request landing on any other.
//! The front-end routes requests to workers:
//!
//! * **Priority-aware placement.** Interactive requests are placed into a
//!   specific worker's inbox at submit time, so they start decoding on the
//!   next step of that worker — never behind the bulk backlog. Placement
//!   balances *cumulative placed lanes* with a seed-rotated tie-break: a
//!   pure function of the submission sequence and the engine seed, so the
//!   same seed and worker count reproduce the same placement exactly (the
//!   property harness pins this). Reactive load-feedback placement would be
//!   timing-dependent and break that replayability; the bulk path below
//!   supplies the reactive half.
//! * **Work-stealing of bulk requests.** Bulk requests enter one shared
//!   backlog, ordered earliest-deadline-first then FIFO. Any worker with
//!   free capacity steals from it under the state lock — whichever worker
//!   drains its interactive load first absorbs the backlog, so bulk
//!   throughput tracks actual idle capacity rather than a static split.
//! * **Synchronous client API.** [`submit`](Engine::submit) /
//!   [`poll`](Engine::poll) / [`cancel`](Engine::cancel) are ordinary
//!   synchronous calls from any thread (the engine is `Sync`); workers run
//!   autonomously and park on a condvar when idle.
//!
//! # Determinism
//!
//! Every request's output is **bitwise identical** at any worker count:
//! a request decodes entirely within one worker's `BatchDecoder`, whose
//! per-lane numerics are pinned bitwise to the single-request reference
//! (see [`decode_step_batch`](crate::decode_step_batch)), and lanes never
//! read each other's *mutable* state — shared prefix pages are read-only
//! (an append into a shared partial page copies-on-write first), and the
//! K/V rows behind a shared prefix are a pure function of
//! `(enc_out, fed tokens)`, identical no matter which worker computed them
//! — so neither placement, stealing order, nor co-scheduled traffic can
//! perturb a logit. What *does* vary with timing
//! is scheduling telemetry (queue waits, preemptions) and which worker ran
//! a stolen bulk request. `tests/parallel_engine_props.rs` drives random
//! schedules through worker counts {1, 2, 4} and asserts token equality
//! against the single-threaded references, plus zero leaked pages on every
//! pool after [`shutdown`](Engine::shutdown).
//!
//! # Cancellation races
//!
//! [`cancel`](Engine::cancel) returns `true` if the request was still
//! pending *at the time of the call*. A request already mid-step may still
//! complete; the authoritative outcome is what [`poll`](Engine::poll)
//! reports — `Cancelled`, or `Done` if the race went the other way.

use crate::batch::{
    BatchDecoder, BatchRequest, PollResult, Priority, RequestId, DEFAULT_AGING_STEPS,
    DEFAULT_MAX_BATCH,
};
use crate::config::ModelConfig;
use crate::infer::{DecoderWeights, Precision};
use crate::paged::{PagePool, PoolStats};
use crate::radix::{PrefixIndex, PrefixStats};
use crate::transformer::TransformerParams;
use crate::Seq2SeqModel;
use mpirical_tensor::ParamStore;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::borrow::Cow;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An owned, shareable model bundle for worker threads: parameters, config,
/// and the decoder weights prepared **once** for the engine's precision.
/// Workers borrow from one `Arc<EngineModel>`, so N workers never re-pack or
/// re-quantize weights.
#[derive(Debug)]
pub struct EngineModel {
    pub store: ParamStore,
    pub params: TransformerParams,
    pub cfg: ModelConfig,
    weights: DecoderWeights,
}

impl EngineModel {
    /// Bundle a model, preparing decoder weights for `precision`.
    pub fn new(
        store: ParamStore,
        params: TransformerParams,
        cfg: ModelConfig,
        precision: Precision,
    ) -> EngineModel {
        let weights = DecoderWeights::for_precision(&store, &params, precision);
        EngineModel {
            store,
            params,
            cfg,
            weights,
        }
    }

    /// Bundle a model around an already-prepared weight set (an artifact's
    /// load-time quantized weights). `weights` must come from the same
    /// `(store, params)`.
    pub fn with_weights(
        store: ParamStore,
        params: TransformerParams,
        cfg: ModelConfig,
        weights: DecoderWeights,
    ) -> EngineModel {
        EngineModel {
            store,
            params,
            cfg,
            weights,
        }
    }

    /// Bundle a copy of a checkpointed artifact.
    pub fn from_model(model: &Seq2SeqModel, precision: Precision) -> EngineModel {
        EngineModel::new(
            model.store.clone(),
            model.params.clone(),
            model.cfg.clone(),
            precision,
        )
    }

    /// The projection precision the weights were prepared for; every
    /// submitted request must match it.
    pub fn precision(&self) -> Precision {
        self.weights.precision()
    }

    /// The prepared decoder weight set.
    pub fn weights(&self) -> &DecoderWeights {
        &self.weights
    }
}

/// Engine construction knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads (each owns a `BatchDecoder`); at least 1.
    pub workers: usize,
    /// Lanes per worker (each worker's `max_batch`).
    pub max_batch: usize,
    /// Per-worker aging bound (see [`BatchDecoder::set_aging_steps`]).
    pub aging_steps: u64,
    /// Soft page cap (see [`BatchDecoder::set_page_limit`]). Workers share
    /// one pool, so the cap counts pages **fleet-wide**: any worker over it
    /// sheds prefix snapshots / bulk lanes by its own scheduler's policy.
    pub page_limit: Option<usize>,
    /// Placement seed: rotates the tie-break order of interactive
    /// placement. Same seed + same worker count ⇒ identical placement for
    /// the same submission sequence.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 1,
            max_batch: DEFAULT_MAX_BATCH,
            aging_steps: DEFAULT_AGING_STEPS,
            page_limit: None,
            seed: 0,
        }
    }
}

impl EngineConfig {
    /// Defaults with an explicit worker count.
    pub fn with_workers(workers: usize) -> EngineConfig {
        EngineConfig {
            workers,
            ..EngineConfig::default()
        }
    }
}

/// Engine-level request ticket (workers map it to their local
/// [`RequestId`]; clients only ever see this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EngineTicket(u64);

impl EngineTicket {
    /// The underlying ticket number (for logging / persistence).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a ticket from a persisted number; polling a fabricated one
    /// reports [`PollResult::Unknown`].
    pub fn from_raw(raw: u64) -> EngineTicket {
        EngineTicket(raw)
    }
}

impl fmt::Display for EngineTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eng#{}", self.0)
    }
}

/// A routed request awaiting a worker.
struct Job {
    ticket: EngineTicket,
    req: BatchRequest,
}

/// A retired request's terminal state.
enum Resolution {
    Done {
        ids: Vec<usize>,
        hypotheses: Vec<Vec<usize>>,
        telemetry: crate::batch::RequestTelemetry,
    },
    Cancelled,
}

/// Mutable engine state behind one mutex. Workers hold it only for routing
/// bookkeeping (pops, publishes) — never across a decode step.
struct State {
    shutdown: bool,
    /// Interactive jobs placed per worker (deterministic front-end routing).
    inbox: Vec<VecDeque<Job>>,
    /// Bulk jobs awaiting any worker, popped earliest-deadline-first.
    backlog: Vec<Job>,
    /// Cancel requests routed to the worker that owns the ticket.
    cancels: Vec<Vec<EngineTicket>>,
    /// Terminal states awaiting their one redeeming poll.
    results: HashMap<EngineTicket, Resolution>,
    /// Tickets submitted and not yet resolved.
    pending: HashSet<EngineTicket>,
    /// Latest streamed partial ids per decoding ticket.
    progress_tokens: HashMap<EngineTicket, Vec<usize>>,
    /// Worker that pulled each in-flight ticket.
    owner: HashMap<EngineTicket, usize>,
    /// Cumulative lanes placed per worker by the front-end (interactive
    /// only — monotone, so placement is a pure function of the submission
    /// sequence; bulk stealing provides the timing-reactive balance).
    placed_lanes: Vec<u64>,
    /// Interactive placements in submission order (telemetry; the
    /// determinism property asserts this is a function of seed + schedule).
    placements: Vec<(EngineTicket, usize)>,
    /// Bulk jobs pulled from the shared backlog by workers.
    bulk_steals: u64,
    /// Latest published per-worker scheduler telemetry. (Pool and prefix
    /// telemetry need no publishing: the shared pool and index are read
    /// directly.)
    sched_stats: Vec<WorkerSched>,
    next_ticket: u64,
}

/// Per-worker scheduler counters published each step.
#[derive(Debug, Clone, Copy, Default)]
struct WorkerSched {
    preemptions: u64,
}

impl State {
    fn new(workers: usize) -> State {
        State {
            shutdown: false,
            inbox: (0..workers).map(|_| VecDeque::new()).collect(),
            backlog: Vec::new(),
            cancels: vec![Vec::new(); workers],
            results: HashMap::new(),
            pending: HashSet::new(),
            progress_tokens: HashMap::new(),
            owner: HashMap::new(),
            placed_lanes: vec![0; workers],
            placements: Vec::new(),
            bulk_steals: 0,
            sched_stats: vec![WorkerSched::default(); workers],
            next_ticket: 0,
        }
    }

    fn finish(&mut self, ticket: EngineTicket, resolution: Resolution) {
        self.pending.remove(&ticket);
        self.progress_tokens.remove(&ticket);
        self.owner.remove(&ticket);
        self.results.insert(ticket, resolution);
    }

    /// Pop the best bulk job: earliest deadline stamp first, then FIFO.
    fn pop_backlog(&mut self) -> Option<Job> {
        let best = self
            .backlog
            .iter()
            .enumerate()
            .min_by_key(|(_, j)| (j.req.submit.deadline.unwrap_or(u64::MAX), j.ticket.0))
            .map(|(i, _)| i)?;
        Some(self.backlog.remove(best))
    }
}

struct Shared {
    model: Arc<EngineModel>,
    cfg: EngineConfig,
    /// The fleet-wide page pool every worker's lanes draw from.
    pool: PagePool,
    /// The fleet-wide radix prefix index (snapshots live in `pool`).
    prefix: PrefixIndex,
    state: Mutex<State>,
    /// Workers park here when idle; submit/cancel/shutdown notify it.
    work: Condvar,
    /// Clients park here in [`Engine::drain`]; resolutions notify it.
    progress: Condvar,
}

/// The sharded serving engine (see module docs).
pub struct Engine {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Seed-derived starting offset for the placement tie-break rotation.
    rotation: usize,
}

/// splitmix64 — decorrelates the raw seed into a rotation offset.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl Engine {
    /// Spawn `cfg.workers` worker threads over a shared model bundle.
    ///
    /// # Panics
    ///
    /// If `cfg.workers` is 0 (delegated lane checks — `max_batch` ≥ 1 —
    /// panic in the workers' `BatchDecoder` constructors).
    pub fn new(model: Arc<EngineModel>, cfg: EngineConfig) -> Engine {
        assert!(cfg.workers >= 1, "engine needs at least one worker");
        let pool = PagePool::new(model.cfg.d_head());
        let shared = Arc::new(Shared {
            model,
            cfg,
            pool,
            prefix: PrefixIndex::new(),
            state: Mutex::new(State::new(cfg.workers)),
            work: Condvar::new(),
            progress: Condvar::new(),
        });
        let handles = (0..cfg.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("engine-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn engine worker")
            })
            .collect();
        Engine {
            shared,
            handles,
            rotation: (splitmix64(cfg.seed) % cfg.workers as u64) as usize,
        }
    }

    /// Queue a request, routing it by priority class (see module docs), and
    /// return its ticket.
    ///
    /// # Panics
    ///
    /// If the request's beam width is 0 or exceeds the per-worker
    /// `max_batch`, its precision differs from the engine model's, or the
    /// engine has been shut down.
    pub fn submit(&self, req: BatchRequest) -> EngineTicket {
        assert!(
            req.opts.beam >= 1 && req.opts.beam <= self.shared.cfg.max_batch,
            "beam width {} outside the engine's 1..={} lanes per worker",
            req.opts.beam,
            self.shared.cfg.max_batch
        );
        assert_eq!(
            req.opts.precision,
            self.shared.model.precision(),
            "request precision differs from the engine model's prepared weights"
        );
        let mut st = self.shared.state.lock();
        assert!(!st.shutdown, "engine is shut down");
        let ticket = EngineTicket(st.next_ticket);
        st.next_ticket += 1;
        st.pending.insert(ticket);
        match req.submit.priority {
            Priority::Interactive => {
                let workers = self.shared.cfg.workers;
                let w = (0..workers)
                    .map(|i| (i + self.rotation) % workers)
                    .min_by_key(|&w| st.placed_lanes[w])
                    .expect("at least one worker");
                st.placed_lanes[w] += req.opts.beam as u64;
                st.placements.push((ticket, w));
                st.inbox[w].push_back(Job { ticket, req });
            }
            Priority::Bulk => st.backlog.push(Job { ticket, req }),
        }
        drop(st);
        self.shared.work.notify_all();
        ticket
    }

    /// Report a ticket's lifecycle state. `Done` and `Cancelled` redeem
    /// once, exactly like [`BatchDecoder::poll`]. `Decoding` streams the
    /// latest partial ids the owning worker published (one step stale at
    /// most); a ticket still queued — in the front-end or inside its
    /// worker — reports `Queued` with the number of front-end-queued
    /// requests ahead of it.
    pub fn poll(&self, ticket: EngineTicket) -> PollResult {
        let mut st = self.shared.state.lock();
        match st.results.remove(&ticket) {
            Some(Resolution::Done {
                ids,
                hypotheses,
                telemetry,
            }) => {
                return PollResult::Done {
                    ids,
                    hypotheses,
                    telemetry,
                }
            }
            Some(Resolution::Cancelled) => return PollResult::Cancelled,
            None => {}
        }
        if !st.pending.contains(&ticket) {
            return PollResult::Unknown;
        }
        if let Some(tokens) = st.progress_tokens.get(&ticket) {
            return PollResult::Decoding {
                tokens_so_far: tokens.clone(),
            };
        }
        let position = st
            .inbox
            .iter()
            .flatten()
            .chain(&st.backlog)
            .filter(|j| j.ticket.0 < ticket.0)
            .count();
        PollResult::Queued { position }
    }

    /// Cancel a request. Returns `true` if it was still pending at the time
    /// of the call: a front-end-queued job resolves `Cancelled` immediately;
    /// an in-flight one is cancelled by its worker at the next step — unless
    /// it finishes first, in which case [`poll`](Engine::poll) reports
    /// `Done` (see module docs on cancellation races).
    pub fn cancel(&self, ticket: EngineTicket) -> bool {
        let mut st = self.shared.state.lock();
        if !st.pending.contains(&ticket) {
            return false;
        }
        for q in &mut st.inbox {
            if let Some(pos) = q.iter().position(|j| j.ticket == ticket) {
                q.remove(pos);
                st.finish(ticket, Resolution::Cancelled);
                drop(st);
                self.shared.progress.notify_all();
                return true;
            }
        }
        if let Some(pos) = st.backlog.iter().position(|j| j.ticket == ticket) {
            st.backlog.remove(pos);
            st.finish(ticket, Resolution::Cancelled);
            drop(st);
            self.shared.progress.notify_all();
            return true;
        }
        if let Some(&w) = st.owner.get(&ticket) {
            st.cancels[w].push(ticket);
        }
        drop(st);
        self.shared.work.notify_all();
        true
    }

    /// Requests submitted and not yet resolved.
    pub fn pending(&self) -> usize {
        self.shared.state.lock().pending.len()
    }

    /// Block until every submitted request has resolved (done or
    /// cancelled).
    pub fn drain(&self) {
        let mut st = self.shared.state.lock();
        while !st.pending.is_empty() {
            self.shared.progress.wait(&mut st);
        }
    }

    /// [`drain`](Engine::drain) with a timeout; `true` if fully drained.
    pub fn drain_for(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock();
        while !st.pending.is_empty() {
            if self
                .shared
                .progress
                .wait_until(&mut st, deadline)
                .timed_out()
            {
                return st.pending.is_empty();
            }
        }
        true
    }

    /// The worker count this engine was built with.
    pub fn workers(&self) -> usize {
        self.shared.cfg.workers
    }

    /// Interactive placements `(ticket, worker)` in submission order — a
    /// pure function of the engine seed, worker count, and submission
    /// sequence (see module docs).
    pub fn placements(&self) -> Vec<(EngineTicket, usize)> {
        self.shared.state.lock().placements.clone()
    }

    /// Bulk jobs workers have stolen from the shared backlog so far.
    pub fn bulk_steals(&self) -> u64 {
        self.shared.state.lock().bulk_steals
    }

    /// Telemetry of the fleet-wide page pool (every worker draws from one
    /// shared pool, so this is a single-entry list — the shape is kept for
    /// callers that sum over entries).
    pub fn pool_stats(&self) -> Vec<PoolStats> {
        vec![self.shared.pool.stats()]
    }

    /// Preemptions across every worker's scheduler (bulk groups that
    /// yielded lanes to interactive arrivals).
    pub fn preemptions(&self) -> u64 {
        let st = self.shared.state.lock();
        st.sched_stats.iter().map(|s| s.preemptions).sum()
    }

    /// Full prefix hits — admissions whose whole prompt was covered by a
    /// retained prefill. The index is shared by every worker, so hits occur
    /// between requests regardless of which worker each landed on.
    pub fn prefix_hits(&self) -> u64 {
        self.shared.prefix.stats().hits
    }

    /// Telemetry of the fleet-wide radix prefix index: full/partial hits,
    /// misses, shared vs prefilled rows (see [`PrefixStats`]).
    pub fn prefix_stats(&self) -> PrefixStats {
        self.shared.prefix.stats()
    }

    /// The aging bound every worker's scheduler was configured with.
    pub fn aging_steps(&self) -> u64 {
        self.shared.cfg.aging_steps
    }

    /// Convenience: submit every request, drain, and return the winning ids
    /// in submission order (the engine-level
    /// [`BatchDecoder::decode_all`]).
    pub fn decode_all(&self, reqs: Vec<BatchRequest>) -> Vec<Vec<usize>> {
        let tickets: Vec<EngineTicket> = reqs.into_iter().map(|r| self.submit(r)).collect();
        self.drain();
        tickets
            .into_iter()
            .map(|t| match self.poll(t) {
                PollResult::Done { ids, .. } => ids,
                other => panic!("drain() resolves every request (got {other:?})"),
            })
            .collect()
    }

    /// [`decode_all`](Engine::decode_all) keeping every request's full
    /// ranked hypothesis list.
    pub fn decode_all_hypotheses(&self, reqs: Vec<BatchRequest>) -> Vec<Vec<Vec<usize>>> {
        let tickets: Vec<EngineTicket> = reqs.into_iter().map(|r| self.submit(r)).collect();
        self.drain();
        tickets
            .into_iter()
            .map(|t| match self.poll(t) {
                PollResult::Done { hypotheses, .. } => hypotheses,
                other => panic!("drain() resolves every request (got {other:?})"),
            })
            .collect()
    }

    /// Stop accepting work and begin worker shutdown: front-end-queued jobs
    /// resolve `Cancelled`; workers exit after their current step, resolving
    /// any still-decoding requests `Cancelled` too. (Call
    /// [`drain`](Engine::drain) first to let in-flight work finish.)
    fn begin_shutdown(&self) {
        let mut st = self.shared.state.lock();
        st.shutdown = true;
        let mut orphans: Vec<EngineTicket> = st
            .inbox
            .iter_mut()
            .flat_map(|q| q.drain(..))
            .map(|j| j.ticket)
            .collect();
        orphans.extend(st.backlog.drain(..).map(|j| j.ticket));
        for t in orphans {
            st.finish(t, Resolution::Cancelled);
        }
        drop(st);
        self.shared.work.notify_all();
        self.shared.progress.notify_all();
    }

    /// Shut down and join every worker, returning the shared pool's
    /// **final** telemetry (a single-entry list), captured after every
    /// decoder dropped and the prefix index was cleared — so
    /// `pages_live == 0` unless pages actually leaked (the property
    /// harness's closing assertion).
    pub fn shutdown(mut self) -> Vec<PoolStats> {
        self.begin_shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Retained prefix snapshots pin pool pages by design; drop them so
        // the final stats expose only genuine leaks.
        self.shared.prefix.clear();
        vec![self.shared.pool.stats()]
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            self.begin_shutdown();
            for h in self.handles.drain(..) {
                let _ = h.join();
            }
            self.shared.prefix.clear();
        }
    }
}

/// One worker: a private `BatchDecoder` scheduler over the fleet-shared
/// pool and prefix index, driven by a pull-step-harvest loop.
fn worker_loop(shared: &Shared, w: usize) {
    let model = &shared.model;
    let mut dec = BatchDecoder::with_shared(
        &model.store,
        &model.params,
        &model.cfg,
        shared.cfg.max_batch,
        Cow::Borrowed(&model.weights),
        shared.pool.clone(),
        shared.prefix.clone(),
    );
    dec.set_aging_steps(shared.cfg.aging_steps);
    dec.set_page_limit(shared.cfg.page_limit);
    // Tickets this worker owns, paired with their local request ids.
    let mut live: Vec<(EngineTicket, RequestId)> = Vec::new();
    loop {
        let mut should_exit = false;
        {
            let mut st = shared.state.lock();
            loop {
                apply_cancels(shared, &mut st, &mut dec, &mut live, w);
                while let Some(job) = st.inbox[w].pop_front() {
                    st.owner.insert(job.ticket, w);
                    let rid = dec.submit(job.req);
                    live.push((job.ticket, rid));
                }
                // Steal bulk work while this worker plausibly has capacity
                // (the local scheduler's admission handles exact lane fit,
                // aging, and preemption).
                while dec.pending() < dec.max_batch() {
                    let Some(job) = st.pop_backlog() else { break };
                    st.owner.insert(job.ticket, w);
                    st.bulk_steals += 1;
                    let rid = dec.submit(job.req);
                    live.push((job.ticket, rid));
                }
                if st.shutdown {
                    should_exit = true;
                    break;
                }
                if !live.is_empty() {
                    break;
                }
                shared.work.wait(&mut st);
            }
        }
        if should_exit {
            break;
        }
        dec.step();
        // Harvest outside the lock, publish under it.
        let mut resolved: Vec<(EngineTicket, Resolution)> = Vec::new();
        let mut partials: Vec<(EngineTicket, Vec<usize>)> = Vec::new();
        live.retain(|&(ticket, rid)| match dec.poll(rid) {
            PollResult::Done {
                ids,
                hypotheses,
                telemetry,
            } => {
                resolved.push((
                    ticket,
                    Resolution::Done {
                        ids,
                        hypotheses,
                        telemetry,
                    },
                ));
                false
            }
            PollResult::Cancelled | PollResult::Unknown => {
                resolved.push((ticket, Resolution::Cancelled));
                false
            }
            PollResult::Decoding { tokens_so_far } => {
                partials.push((ticket, tokens_so_far));
                true
            }
            PollResult::Queued { .. } => true,
        });
        {
            let mut st = shared.state.lock();
            for (t, p) in partials {
                st.progress_tokens.insert(t, p);
            }
            let any_resolved = !resolved.is_empty();
            for (t, r) in resolved {
                st.finish(t, r);
            }
            st.sched_stats[w] = WorkerSched {
                preemptions: dec.preemptions(),
            };
            drop(st);
            if any_resolved {
                shared.progress.notify_all();
            }
        }
    }
    // Shutdown: dropping the decoder releases every group's pages back to
    // the shared pool (retained prefix snapshots belong to the shared
    // index, cleared by Engine::shutdown after every worker joins).
    let final_sched = WorkerSched {
        preemptions: dec.preemptions(),
    };
    drop(dec);
    let mut st = shared.state.lock();
    st.sched_stats[w] = final_sched;
    for (ticket, _) in live {
        st.finish(ticket, Resolution::Cancelled);
    }
    drop(st);
    shared.progress.notify_all();
}

/// Apply cancel requests routed to worker `w`. Called under the state lock.
fn apply_cancels(
    shared: &Shared,
    st: &mut MutexGuard<'_, State>,
    dec: &mut BatchDecoder,
    live: &mut Vec<(EngineTicket, RequestId)>,
    w: usize,
) {
    let cancels: Vec<EngineTicket> = st.cancels[w].drain(..).collect();
    let mut any = false;
    for ticket in cancels {
        if let Some(pos) = live.iter().position(|&(t, _)| t == ticket) {
            let (_, rid) = live[pos];
            if dec.cancel(rid) {
                // Consume the local Cancelled marker so the worker's
                // scheduler never accumulates unredeemed markers.
                let _ = dec.poll(rid);
                live.remove(pos);
                st.finish(ticket, Resolution::Cancelled);
                any = true;
            }
            // cancel() == false ⇒ the request just finished; the next
            // harvest records its Done resolution instead.
        }
    }
    if any {
        shared.progress.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{decode_encoded, encode_source, DecodeOptions};
    use crate::transformer::build_params;
    use crate::vocab::{EOS, SOS};
    use crate::SubmitOptions;
    use mpirical_tensor::Tensor;

    /// A random (untrained) multi-layer model — the engine's equivalence
    /// properties hold for any weights.
    fn setup() -> (ModelConfig, ParamStore, TransformerParams) {
        let mut cfg = ModelConfig::tiny();
        cfg.vocab_size = 24;
        cfg.n_dec_layers = 2;
        let mut store = ParamStore::new();
        let params = build_params(&cfg, &mut store, 13);
        (cfg, store, params)
    }

    fn enc(
        store: &ParamStore,
        params: &TransformerParams,
        cfg: &ModelConfig,
        seed: usize,
    ) -> Tensor {
        let src = vec![SOS, 6 + (seed % 5), 7 + (seed % 7), 9, EOS];
        encode_source(store, params, cfg, &src)
    }

    fn engine_over(
        store: &ParamStore,
        params: &TransformerParams,
        cfg: &ModelConfig,
        econf: EngineConfig,
    ) -> Engine {
        let model = Arc::new(EngineModel::new(
            store.clone(),
            params.clone(),
            cfg.clone(),
            Precision::F32,
        ));
        Engine::new(model, econf)
    }

    #[test]
    fn single_worker_engine_matches_batch_decoder() {
        let (cfg, store, params) = setup();
        let encs: Vec<Tensor> = (0..4).map(|i| enc(&store, &params, &cfg, i)).collect();
        let mut dec = BatchDecoder::new(&store, &params, &cfg, 4);
        let reference = dec.decode_all(
            encs.iter()
                .map(|e| BatchRequest::greedy(e.clone(), 20))
                .collect(),
        );
        let engine = engine_over(
            &store,
            &params,
            &cfg,
            EngineConfig {
                workers: 1,
                max_batch: 4,
                ..EngineConfig::default()
            },
        );
        let out = engine.decode_all(
            encs.into_iter()
                .map(|e| BatchRequest::greedy(e, 20))
                .collect(),
        );
        assert_eq!(out, reference);
        let stats = engine.shutdown();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].pages_live, 0, "single worker leaked pages");
    }

    #[test]
    fn multi_worker_engine_is_bitwise_identical_to_serial_decode() {
        let (cfg, store, params) = setup();
        let encs: Vec<Tensor> = (0..6).map(|i| enc(&store, &params, &cfg, i)).collect();
        let singles: Vec<Vec<usize>> = encs
            .iter()
            .map(|e| decode_encoded(&store, &params, &cfg, e, 20, DecodeOptions::default()))
            .collect();
        let engine = engine_over(
            &store,
            &params,
            &cfg,
            EngineConfig {
                workers: 3,
                max_batch: 2,
                ..EngineConfig::default()
            },
        );
        let out = engine.decode_all(
            encs.into_iter()
                .map(|e| BatchRequest::greedy(e, 20))
                .collect(),
        );
        assert_eq!(out, singles);
        for (w, s) in engine.shutdown().into_iter().enumerate() {
            assert_eq!(s.pages_live, 0, "worker {w} leaked pages");
        }
    }

    /// A prefill retained by whichever worker decodes first is visible to
    /// every other worker through the shared radix index: a sequenced
    /// resubmit of a near-identical prompt reports a partial hit (and an
    /// identical prompt an exact hit) no matter which worker picks it up,
    /// with outputs bitwise equal to the unshared reference path.
    #[test]
    fn radix_index_is_shared_across_workers() {
        let (cfg, store, params) = setup();
        let e = enc(&store, &params, &cfg, 3);
        let base: Vec<usize> = std::iter::once(SOS)
            .chain((0..17).map(|i| 3 + i % 20))
            .collect();
        let mut edited = base.clone();
        edited[16] += 1;
        let reference = |prompt: &[usize]| {
            crate::decode::decode_encoded_prompted(
                &store,
                &params,
                &cfg,
                &e,
                prompt,
                24,
                DecodeOptions::default(),
            )
        };
        let engine = engine_over(
            &store,
            &params,
            &cfg,
            EngineConfig {
                workers: 2,
                max_batch: 2,
                ..EngineConfig::default()
            },
        );
        let submit_one = |prompt: &[usize]| {
            let ticket = engine.submit(BatchRequest {
                enc_out: e.clone(),
                prompt: prompt.to_vec(),
                max_len: 24,
                opts: DecodeOptions::default(),
                submit: SubmitOptions::default(),
            });
            engine.drain();
            match engine.poll(ticket) {
                PollResult::Done { ids, .. } => ids,
                other => panic!("sequenced request not done: {other:?}"),
            }
        };
        // Sequenced so the retained prefill exists before the next lookup;
        // drains between submits let different workers serve each request.
        assert_eq!(submit_one(&base), reference(&base));
        assert_eq!(submit_one(&edited), reference(&edited));
        assert_eq!(submit_one(&base), reference(&base));
        let s = engine.prefix_stats();
        assert_eq!(s.misses, 1, "only the first prompt prefills cold");
        assert_eq!(s.partial_hits, 1, "the edited prompt shares a prefix");
        assert_eq!(s.hits, 1, "the identical resubmit shares everything");
        assert!(
            s.shared_rows >= 16,
            "at least one whole page served from the index (got {})",
            s.shared_rows
        );
        for (w, s) in engine.shutdown().into_iter().enumerate() {
            assert_eq!(s.pages_live, 0, "worker {w} leaked pages");
        }
    }

    #[test]
    fn bulk_backlog_is_stolen_and_decoded() {
        let (cfg, store, params) = setup();
        let encs: Vec<Tensor> = (0..4).map(|i| enc(&store, &params, &cfg, i)).collect();
        let singles: Vec<Vec<usize>> = encs
            .iter()
            .map(|e| decode_encoded(&store, &params, &cfg, e, 16, DecodeOptions::default()))
            .collect();
        let engine = engine_over(
            &store,
            &params,
            &cfg,
            EngineConfig {
                workers: 2,
                max_batch: 2,
                ..EngineConfig::default()
            },
        );
        let out = engine.decode_all(
            encs.into_iter()
                .map(|e| BatchRequest::greedy(e, 16).bulk())
                .collect(),
        );
        assert_eq!(out, singles);
        assert_eq!(
            engine.bulk_steals(),
            4,
            "every bulk request reaches a worker through the shared backlog"
        );
        assert!(
            engine.placements().is_empty(),
            "bulk is never front-end placed"
        );
        engine.shutdown();
    }

    #[test]
    fn interactive_placement_is_a_function_of_seed_and_schedule() {
        let (cfg, store, params) = setup();
        let run = |seed: u64| {
            let engine = engine_over(
                &store,
                &params,
                &cfg,
                EngineConfig {
                    workers: 3,
                    max_batch: 2,
                    seed,
                    ..EngineConfig::default()
                },
            );
            let _tickets: Vec<EngineTicket> = (0..9)
                .map(|i| engine.submit(BatchRequest::greedy(enc(&store, &params, &cfg, i), 10)))
                .collect();
            engine.drain();
            let placements = engine.placements();
            engine.shutdown();
            placements
        };
        assert_eq!(run(7), run(7), "same seed must replay the same placement");
        // Placement balances cumulative lanes: 9 equal requests over 3
        // workers land 3 per worker regardless of seed.
        let mut per_worker = [0usize; 3];
        for (_, w) in run(11) {
            per_worker[w] += 1;
        }
        assert_eq!(per_worker, [3, 3, 3]);
    }

    #[test]
    fn cancel_and_poll_lifecycle() {
        let (cfg, store, params) = setup();
        let engine = engine_over(
            &store,
            &params,
            &cfg,
            EngineConfig {
                workers: 1,
                max_batch: 1,
                ..EngineConfig::default()
            },
        );
        assert!(
            !engine.cancel(EngineTicket::from_raw(999)),
            "unknown tickets are not cancellable"
        );
        let tickets: Vec<EngineTicket> = (0..3)
            .map(|i| engine.submit(BatchRequest::greedy(enc(&store, &params, &cfg, i), 16)))
            .collect();
        let was_pending = engine.cancel(tickets[2]);
        engine.drain();
        match engine.poll(tickets[2]) {
            PollResult::Cancelled => assert!(was_pending),
            PollResult::Done { .. } => {} // finished before the cancel landed
            other => panic!("cancelled ticket resolved as {other:?}"),
        }
        for &t in &tickets[..2] {
            assert!(
                matches!(engine.poll(t), PollResult::Done { .. }),
                "untouched requests still finish"
            );
        }
        assert!(
            matches!(engine.poll(tickets[0]), PollResult::Unknown),
            "Done redeems exactly once"
        );
        let stats = engine.shutdown();
        assert_eq!(stats[0].pages_live, 0);
    }

    #[test]
    fn backlog_pops_earliest_deadline_then_fifo() {
        let (cfg, store, params) = setup();
        let mut st = State::new(1);
        let deadlines = [Some(5u64), None, Some(2), Some(5)];
        for (i, dl) in deadlines.into_iter().enumerate() {
            let mut req = BatchRequest::greedy(enc(&store, &params, &cfg, i), 8).bulk();
            req.submit.deadline = dl;
            st.backlog.push(Job {
                ticket: EngineTicket(i as u64),
                req,
            });
        }
        let order: Vec<u64> = std::iter::from_fn(|| st.pop_backlog())
            .map(|j| j.ticket.raw())
            .collect();
        assert_eq!(
            order,
            vec![2, 0, 3, 1],
            "earliest deadline first, FIFO within ties, None last"
        );
    }

    #[test]
    #[should_panic(expected = "precision")]
    fn submit_rejects_precision_mismatch() {
        let (cfg, store, params) = setup();
        let engine = engine_over(&store, &params, &cfg, EngineConfig::default());
        let mut req = BatchRequest::greedy(enc(&store, &params, &cfg, 0), 8);
        req.opts.precision = Precision::Int8;
        engine.submit(req);
    }

    #[test]
    #[should_panic(expected = "beam width")]
    fn submit_rejects_oversized_beam() {
        let (cfg, store, params) = setup();
        let engine = engine_over(
            &store,
            &params,
            &cfg,
            EngineConfig {
                workers: 1,
                max_batch: 2,
                ..EngineConfig::default()
            },
        );
        engine.submit(BatchRequest::beam(enc(&store, &params, &cfg, 0), 8, 4));
    }
}
