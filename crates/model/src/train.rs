//! Training loop: teacher forcing, gradient accumulation, data-parallel
//! batch sharding across crossbeam scoped threads.
//!
//! One optimizer step processes `batch_size` examples. The batch is split
//! into `threads` shards; each worker thread replays its shard on a private
//! [`Tape`] against the shared read-only [`ParamStore`], producing a
//! [`Grads`]. Shard gradients are merged in a fixed order (shard 0, 1, …) so
//! training is bit-reproducible for a given `(seed, threads)` pair.

use crate::config::ModelConfig;
use crate::transformer::{seq2seq_loss, ForwardMode, TransformerParams};
use crate::vocab::EOS;
use mpirical_tensor::{Adam, Grads, ParamStore, Tape};
use serde::{Deserialize, Serialize};

/// One supervised sequence pair (token ids; both sides start with `<sos>`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Example {
    pub src: Vec<usize>,
    pub tgt: Vec<usize>,
}

/// Training hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    pub warmup_steps: usize,
    pub weight_decay: f32,
    pub grad_clip: f32,
    /// Worker threads (`0` = available parallelism).
    pub threads: usize,
    pub seed: u64,
    /// Evaluate on the validation set every epoch when true.
    pub validate: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            batch_size: 32,
            lr: 3e-4,
            warmup_steps: 100,
            weight_decay: 0.01,
            grad_clip: 1.0,
            threads: 0,
            seed: 0xDEC0DE,
            validate: true,
        }
    }
}

impl TrainConfig {
    fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// Per-epoch training telemetry — the series of the paper's Figure 5.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EpochStats {
    pub epoch: usize,
    pub train_loss: f64,
    pub val_loss: f64,
    /// Sequence-level exact-match accuracy on the validation set under
    /// teacher forcing (all positions correct).
    pub val_seq_acc: f64,
    /// Token-level accuracy on the validation set under teacher forcing.
    pub val_tok_acc: f64,
}

/// Full training report.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainReport {
    pub epochs: Vec<EpochStats>,
    pub steps: usize,
}

/// Deterministic shuffle of indices (seeded LCG Fisher–Yates).
fn shuffle_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed ^ 0x5DEECE66D;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

/// Compute summed gradients and total loss for a slice of examples on the
/// current parameters. Used by both the training step (per shard) and tests.
fn accumulate_shard(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    examples: &[&Example],
    mode: ForwardMode,
) -> (Grads, f64) {
    let mut grads = Grads::default();
    let mut loss_sum = 0.0f64;
    for (i, ex) in examples.iter().enumerate() {
        let mut tape = Tape::new();
        let per_ex_mode = ForwardMode {
            train: mode.train,
            dropout_seed: mode.dropout_seed.wrapping_add(i as u64 * 7919),
        };
        let loss = seq2seq_loss(
            &mut tape,
            store,
            params,
            cfg,
            &ex.src,
            &ex.tgt,
            EOS,
            per_ex_mode,
        );
        loss_sum += tape.value(loss).item() as f64;
        let g = tape.backward(loss);
        grads.merge(&g);
    }
    (grads, loss_sum)
}

/// One optimizer step over a batch. Returns the mean loss.
#[allow(clippy::too_many_arguments)]
pub fn train_step(
    store: &mut ParamStore,
    params: &TransformerParams,
    model_cfg: &ModelConfig,
    adam: &mut Adam,
    batch: &[&Example],
    threads: usize,
    grad_clip: f32,
    dropout_seed: u64,
) -> f64 {
    assert!(!batch.is_empty());
    let mode = ForwardMode::training(dropout_seed);
    let threads = threads.max(1).min(batch.len());

    let (mut grads, loss_sum) = if threads == 1 {
        accumulate_shard(store, params, model_cfg, batch, mode)
    } else {
        let chunk = batch.len().div_ceil(threads);
        let shards: Vec<&[&Example]> = batch.chunks(chunk).collect();
        let mut results: Vec<Option<(Grads, f64)>> = (0..shards.len()).map(|_| None).collect();
        let store_ref = &*store;
        crossbeam::scope(|scope| {
            for (shard, slot) in shards.into_iter().zip(results.iter_mut()) {
                scope.spawn(move |_| {
                    *slot = Some(accumulate_shard(store_ref, params, model_cfg, shard, mode));
                });
            }
        })
        .expect("training threads do not panic");
        // Merge in fixed shard order for determinism.
        let mut grads = Grads::default();
        let mut loss_sum = 0.0;
        for r in results.into_iter().flatten() {
            grads.merge(&r.0);
            loss_sum += r.1;
        }
        (grads, loss_sum)
    };

    let n = batch.len() as f32;
    grads.scale(1.0 / n);
    if grad_clip > 0.0 {
        grads.clip_global_norm(grad_clip);
    }
    adam.step(store, &grads);
    loss_sum / n as f64
}

/// Teacher-forced evaluation: mean loss, sequence accuracy, token accuracy.
pub fn evaluate(
    store: &ParamStore,
    params: &TransformerParams,
    cfg: &ModelConfig,
    examples: &[Example],
) -> (f64, f64, f64) {
    if examples.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mut loss_sum = 0.0f64;
    let mut seq_correct = 0usize;
    let mut tok_correct = 0usize;
    let mut tok_total = 0usize;
    for ex in examples {
        let mut tape = Tape::new();
        let enc = crate::transformer::encode(
            &mut tape,
            store,
            params,
            cfg,
            &ex.src,
            ForwardMode::inference(),
        );
        let logits = crate::transformer::decode(
            &mut tape,
            store,
            params,
            cfg,
            enc,
            &ex.tgt,
            ForwardMode::inference(),
        );
        let mut targets: Vec<usize> = ex.tgt[1..].to_vec();
        targets.push(EOS);
        let weights = vec![1.0f32; targets.len()];
        let loss = tape.cross_entropy(logits, &targets, &weights);
        loss_sum += tape.value(loss).item() as f64;
        let preds = tape.value(logits).argmax_rows();
        let correct = preds.iter().zip(&targets).filter(|(p, t)| p == t).count();
        tok_correct += correct;
        tok_total += targets.len();
        if correct == targets.len() {
            seq_correct += 1;
        }
    }
    (
        loss_sum / examples.len() as f64,
        seq_correct as f64 / examples.len() as f64,
        tok_correct as f64 / tok_total.max(1) as f64,
    )
}

/// Full training run. `on_epoch` is invoked after each epoch with the fresh
/// stats (progress reporting).
pub fn train(
    store: &mut ParamStore,
    params: &TransformerParams,
    model_cfg: &ModelConfig,
    train_set: &[Example],
    val_set: &[Example],
    cfg: &TrainConfig,
    mut on_epoch: impl FnMut(&EpochStats),
) -> TrainReport {
    assert!(!train_set.is_empty(), "empty training set");
    let mut adam = Adam::new(cfg.lr);
    adam.warmup = cfg.warmup_steps;
    adam.weight_decay = cfg.weight_decay;
    let threads = cfg.effective_threads();

    let mut report = TrainReport::default();
    for epoch in 0..cfg.epochs {
        let order = shuffle_indices(train_set.len(), cfg.seed.wrapping_add(epoch as u64));
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for (b, chunk) in order.chunks(cfg.batch_size.max(1)).enumerate() {
            let batch: Vec<&Example> = chunk.iter().map(|&i| &train_set[i]).collect();
            let step_seed = cfg
                .seed
                .wrapping_mul(31)
                .wrapping_add((epoch * 1_000_003 + b) as u64);
            let loss = train_step(
                store,
                params,
                model_cfg,
                &mut adam,
                &batch,
                threads,
                cfg.grad_clip,
                step_seed,
            );
            epoch_loss += loss;
            batches += 1;
            report.steps += 1;
        }
        let (val_loss, val_seq_acc, val_tok_acc) = if cfg.validate && !val_set.is_empty() {
            evaluate(store, params, model_cfg, val_set)
        } else {
            (0.0, 0.0, 0.0)
        };
        let stats = EpochStats {
            epoch: epoch + 1,
            train_loss: epoch_loss / batches.max(1) as f64,
            val_loss,
            val_seq_acc,
            val_tok_acc,
        };
        on_epoch(&stats);
        report.epochs.push(stats);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transformer::build_params;

    fn toy_examples() -> Vec<Example> {
        // Task: copy the source (shifted into the target) — learnable by a
        // tiny model in a few dozen steps.
        let mut out = Vec::new();
        for a in 6..12usize {
            for b in 6..12usize {
                out.push(Example {
                    src: vec![1, a, b, 2],
                    tgt: vec![1, a, b],
                });
            }
        }
        out
    }

    fn tiny() -> (ModelConfig, ParamStore, TransformerParams) {
        let mut cfg = ModelConfig::tiny();
        cfg.vocab_size = 16;
        let mut store = ParamStore::new();
        let params = build_params(&cfg, &mut store, 3);
        (cfg, store, params)
    }

    #[test]
    fn loss_decreases_over_training() {
        let (cfg, mut store, params) = tiny();
        let data = toy_examples();
        // 25 epochs (not 15): the offline rand shim's xoshiro stream gives a
        // slightly slower-converging init for this seed than upstream rand.
        let tcfg = TrainConfig {
            epochs: 25,
            batch_size: 12,
            lr: 3e-3,
            warmup_steps: 5,
            threads: 1,
            validate: true,
            ..Default::default()
        };
        let val = data[..6].to_vec();
        let report = train(&mut store, &params, &cfg, &data, &val, &tcfg, |_| {});
        assert_eq!(report.epochs.len(), 25);
        let first = report.epochs.first().unwrap().train_loss;
        let last = report.epochs.last().unwrap().train_loss;
        assert!(last < first * 0.5, "train loss {first} → {last}");
        // Validation accuracy should come up, too.
        let acc = report.epochs.last().unwrap().val_tok_acc;
        assert!(acc >= 0.45, "token accuracy {acc}");
    }

    #[test]
    fn training_deterministic_for_fixed_threads() {
        let data = toy_examples();
        let tcfg = TrainConfig {
            epochs: 1,
            batch_size: 8,
            threads: 1,
            validate: false,
            ..Default::default()
        };
        let run = || {
            let (cfg, mut store, params) = tiny();
            let r = train(&mut store, &params, &cfg, &data, &[], &tcfg, |_| {});
            (r.epochs[0].train_loss, store)
        };
        let (l1, s1) = run();
        let (l2, s2) = run();
        assert_eq!(l1, l2);
        // Weights bit-identical.
        for id in s1.ids() {
            assert_eq!(s1.value(id).data, s2.value(id).data);
        }
    }

    #[test]
    fn multithreaded_step_close_to_serial() {
        // Gradient merge order differs only in floating-point association;
        // losses after one step should agree to high precision.
        let data = toy_examples();
        let batch: Vec<&Example> = data.iter().take(8).collect();
        let run = |threads: usize| {
            let (cfg, mut store, params) = tiny();
            let mut adam = Adam::new(1e-3);
            let loss = train_step(
                &mut store, &params, &cfg, &mut adam, &batch, threads, 1.0, 42,
            );
            (loss, store)
        };
        let (l1, s1) = run(1);
        let (l2, s2) = run(2);
        assert!((l1 - l2).abs() < 1e-9, "losses: {l1} vs {l2}");
        for id in s1.ids() {
            for (a, b) in s1.value(id).data.iter().zip(&s2.value(id).data) {
                assert!((a - b).abs() < 1e-4, "weights diverged: {a} vs {b}");
            }
        }
    }

    #[test]
    fn evaluate_on_empty_is_zero() {
        let (cfg, store, params) = tiny();
        assert_eq!(evaluate(&store, &params, &cfg, &[]), (0.0, 0.0, 0.0));
    }

    #[test]
    fn shuffle_is_permutation_and_seeded() {
        let a = shuffle_indices(100, 1);
        let b = shuffle_indices(100, 1);
        let c = shuffle_indices(100, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
