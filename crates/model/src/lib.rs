//! # mpirical-model
//!
//! The seq2seq transformer of MPI-RICAL (paper §IV), built from scratch on
//! [`mpirical_tensor`]:
//!
//! * [`Vocab`] — word-level vocabulary over standardized code tokens (with
//!   fixed specials `<pad> <sos> <eos> <unk> <sep> <nl>`), plus a [`Bpe`]
//!   trainer for the subword ablation;
//! * [`ModelConfig`] / [`transformer`] — SPT-Code-style encoder–decoder with
//!   sinusoidal positions, pre-LN residual blocks, multi-head attention and
//!   GELU feed-forward;
//! * [`mod@train`] — teacher-forced training with Adam(W), warmup schedule,
//!   gradient clipping, and data-parallel batch sharding over crossbeam
//!   scoped threads;
//! * [`infer`] — the KV-cached incremental inference engine: per-layer
//!   self-attention K/V caches plus cross-attention K/V projected once from
//!   the encoder output, driven one token at a time with no autograd tape;
//! * [`decode`] — greedy and beam search over the cached engine (with the
//!   prefix-replay reference path kept for equivalence tests and benches);
//! * [`batch`] — the [`BatchDecoder`] lockstep scheduler: N concurrent
//!   requests decoded with continuous batching, their per-step projections
//!   fused into shared packed-matrix kernels (logits stay identical to the
//!   single-request path), with priority-aware admission ([`Priority`],
//!   aging, bulk-lane preemption), a typed [`PollResult`] lifecycle with
//!   streaming partial tokens, and cancellation;
//! * [`Seq2SeqModel`] — the bundled artifact (config + vocab + weights) with
//!   JSON checkpointing.
//!
//! The crate is representation-agnostic: it consumes `Vec<usize>` token ids.
//! C-code tokenization lives in the `mpirical` core crate.

pub mod batch;
pub mod bpe;
pub mod config;
pub mod decode;
pub mod engine;
pub mod infer;
pub mod paged;
pub mod radix;
pub mod train;
pub mod transformer;
pub mod vocab;

pub use batch::{
    BatchDecoder, BatchRequest, PollResult, Priority, RequestId, RequestTelemetry, SubmitOptions,
    DEFAULT_AGING_STEPS, DEFAULT_MAX_BATCH,
};
pub use bpe::Bpe;
pub use config::ModelConfig;
pub use decode::{
    beam_decode, beam_decode_replay, decode_encoded, decode_encoded_prompted,
    decode_encoded_prompted_all, decode_encoded_prompted_all_quant,
    decode_encoded_prompted_contiguous, decode_encoded_prompted_quant, decode_with, greedy_decode,
    greedy_decode_replay, replay_decode_with, DecodeOptions,
};
pub use engine::{Engine, EngineConfig, EngineModel, EngineTicket};
pub use infer::{
    decode_step, decode_step_batch, decode_step_quant, BatchScratch, DecoderCache, DecoderWeights,
    PackedDecoderWeights, Precision, QuantDecoderWeights,
};
pub use paged::{PagePool, PoolStats, PAGE_ROWS};
pub use radix::{PrefixIndex, PrefixStats, PREFIX_CACHE_CAP};
pub use train::{evaluate, train, EpochStats, Example, TrainConfig, TrainReport};
pub use transformer::{build_params, ForwardMode, TransformerParams};
pub use vocab::{Vocab, EOS, NL, PAD, SEP, SOS, UNK};

use mpirical_tensor::ParamStore;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A complete model artifact: configuration, vocabulary and weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Seq2SeqModel {
    pub cfg: ModelConfig,
    pub vocab: Vocab,
    pub store: ParamStore,
    pub params: TransformerParams,
}

impl Seq2SeqModel {
    /// Initialize a fresh model for a built vocabulary.
    pub fn new(mut cfg: ModelConfig, vocab: Vocab, seed: u64) -> Seq2SeqModel {
        cfg.vocab_size = vocab.len();
        let mut store = ParamStore::new();
        let params = build_params(&cfg, &mut store, seed);
        Seq2SeqModel {
            cfg,
            vocab,
            store,
            params,
        }
    }

    /// Train in place; returns per-epoch stats (Fig. 5 series).
    pub fn fit(
        &mut self,
        train_set: &[Example],
        val_set: &[Example],
        tcfg: &TrainConfig,
        on_epoch: impl FnMut(&EpochStats),
    ) -> TrainReport {
        train(
            &mut self.store,
            &self.params,
            &self.cfg,
            train_set,
            val_set,
            tcfg,
            on_epoch,
        )
    }

    /// Greedy generation from source ids (KV-cached).
    pub fn generate(&self, src_ids: &[usize], max_len: usize) -> Vec<usize> {
        greedy_decode(&self.store, &self.params, &self.cfg, src_ids, max_len)
    }

    /// Beam-search generation (KV-cached, one cache per hypothesis).
    pub fn generate_beam(&self, src_ids: &[usize], max_len: usize, beam: usize) -> Vec<usize> {
        beam_decode(&self.store, &self.params, &self.cfg, src_ids, max_len, beam)
    }

    /// Generation with explicit [`DecodeOptions`].
    pub fn generate_with(
        &self,
        src_ids: &[usize],
        max_len: usize,
        opts: DecodeOptions,
    ) -> Vec<usize> {
        decode_with(&self.store, &self.params, &self.cfg, src_ids, max_len, opts)
    }

    /// Teacher-forced metrics on a dataset: `(loss, seq_acc, tok_acc)`.
    pub fn evaluate(&self, examples: &[Example]) -> (f64, f64, f64) {
        evaluate(&self.store, &self.params, &self.cfg, examples)
    }

    /// Serialize the full artifact to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serializes")
    }

    /// Deserialize and rebuild skipped indices.
    pub fn from_json(text: &str) -> Result<Seq2SeqModel, serde_json::Error> {
        let mut m: Seq2SeqModel = serde_json::from_str(text)?;
        m.store.rebuild_index();
        m.vocab.rebuild_index();
        Ok(m)
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Seq2SeqModel> {
        let text = std::fs::read_to_string(path)?;
        Seq2SeqModel::from_json(&text).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> Seq2SeqModel {
        let seqs: Vec<Vec<String>> = vec![["int", "main", "(", ")", "{", "}", "MPI_Init", ";"]
            .iter()
            .map(|s| s.to_string())
            .collect()];
        let vocab = Vocab::build(seqs.iter(), 1, 100);
        Seq2SeqModel::new(ModelConfig::tiny(), vocab, 5)
    }

    #[test]
    fn new_model_sets_vocab_size() {
        let m = tiny_model();
        assert_eq!(m.cfg.vocab_size, m.vocab.len());
        assert!(m.store.num_scalars() > 1000);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_behaviour() {
        let m = tiny_model();
        let src = vec![SOS, m.vocab.id("int"), m.vocab.id("main"), EOS];
        let out1 = m.generate(&src, 10);
        let json = m.to_json();
        let m2 = Seq2SeqModel::from_json(&json).unwrap();
        let out2 = m2.generate(&src, 10);
        assert_eq!(out1, out2, "loaded model generates identically");
        assert_eq!(m2.vocab.id("MPI_Init"), m.vocab.id("MPI_Init"));
    }

    #[test]
    fn file_roundtrip() {
        let m = tiny_model();
        let dir = std::env::temp_dir().join("mpirical_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        m.save(&path).unwrap();
        let m2 = Seq2SeqModel::load(&path).unwrap();
        assert_eq!(m2.cfg, m.cfg);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fit_smoke() {
        let mut m = tiny_model();
        let a = m.vocab.id("int");
        let b = m.vocab.id("main");
        let data = vec![
            Example {
                src: vec![SOS, a, EOS],
                tgt: vec![SOS, a],
            },
            Example {
                src: vec![SOS, b, EOS],
                tgt: vec![SOS, b],
            },
        ];
        let tcfg = TrainConfig {
            epochs: 2,
            batch_size: 2,
            threads: 1,
            validate: true,
            ..Default::default()
        };
        let report = m.fit(&data, &data, &tcfg, |_| {});
        assert_eq!(report.epochs.len(), 2);
        assert!(report.epochs[0].train_loss.is_finite());
    }
}
