//! Byte-pair encoding over code tokens — the subword scheme SPT-Code
//! inherits from its pre-trained checkpoint. Provided for the tokenization
//! ablation; the default pipeline uses word-level [`crate::vocab`].
//!
//! The trainer operates *within* word-level tokens: each token is split into
//! characters (with a terminal marker), then the most frequent adjacent pair
//! is merged repeatedly, exactly like the original BPE algorithm.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A trained BPE merge table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bpe {
    /// Ordered merge rules: earlier = higher priority.
    pub merges: Vec<(String, String)>,
}

/// Marker appended to the final symbol of each word so merges cannot cross
/// word boundaries after decoding.
const END: &str = "</w>";

impl Bpe {
    /// Train on an iterator of word tokens. `num_merges` bounds the merge
    /// table size.
    pub fn train<'a>(words: impl IntoIterator<Item = &'a String>, num_merges: usize) -> Bpe {
        // word -> frequency
        let mut word_freq: HashMap<&str, usize> = HashMap::new();
        for w in words {
            *word_freq.entry(w.as_str()).or_insert(0) += 1;
        }
        // Represent each distinct word as a symbol sequence.
        let mut table: Vec<(Vec<String>, usize)> = word_freq
            .into_iter()
            .map(|(w, f)| {
                let mut syms: Vec<String> = w.chars().map(|c| c.to_string()).collect();
                if let Some(last) = syms.last_mut() {
                    last.push_str(END);
                }
                (syms, f)
            })
            .collect();
        // Deterministic order regardless of hash iteration.
        table.sort_by(|a, b| a.0.cmp(&b.0));

        let mut merges = Vec::with_capacity(num_merges);
        for _ in 0..num_merges {
            // Count adjacent pairs.
            let mut pair_freq: HashMap<(String, String), usize> = HashMap::new();
            for (syms, f) in &table {
                for w in syms.windows(2) {
                    *pair_freq.entry((w[0].clone(), w[1].clone())).or_insert(0) += f;
                }
            }
            // Best pair: max frequency, ties broken lexicographically.
            let Some((best, best_f)) = pair_freq.into_iter().max_by(|a, b| {
                a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)) // lexicographically smaller wins
            }) else {
                break;
            };
            if best_f < 2 {
                break;
            }
            // Apply the merge everywhere.
            let merged = format!("{}{}", best.0, best.1);
            for (syms, _) in table.iter_mut() {
                let mut i = 0;
                while i + 1 < syms.len() {
                    if syms[i] == best.0 && syms[i + 1] == best.1 {
                        syms[i] = merged.clone();
                        syms.remove(i + 1);
                    } else {
                        i += 1;
                    }
                }
            }
            merges.push(best);
        }
        Bpe { merges }
    }

    /// Segment one word into subword units.
    pub fn segment(&self, word: &str) -> Vec<String> {
        if word.is_empty() {
            return vec![];
        }
        let mut syms: Vec<String> = word.chars().map(|c| c.to_string()).collect();
        if let Some(last) = syms.last_mut() {
            last.push_str(END);
        }
        for (a, b) in &self.merges {
            let merged = format!("{a}{b}");
            let mut i = 0;
            while i + 1 < syms.len() {
                if &syms[i] == a && &syms[i + 1] == b {
                    syms[i] = merged.clone();
                    syms.remove(i + 1);
                } else {
                    i += 1;
                }
            }
        }
        syms
    }

    /// Segment a token sequence (each token independently).
    pub fn segment_all(&self, tokens: &[String]) -> Vec<String> {
        tokens.iter().flat_map(|t| self.segment(t)).collect()
    }

    /// Reassemble subword units back into word tokens.
    pub fn join(units: &[String]) -> Vec<String> {
        let mut words = Vec::new();
        let mut current = String::new();
        for u in units {
            if let Some(stem) = u.strip_suffix(END) {
                current.push_str(stem);
                words.push(std::mem::take(&mut current));
            } else {
                current.push_str(u);
            }
        }
        if !current.is_empty() {
            words.push(current);
        }
        words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn merges_frequent_pairs_first() {
        let words = corpus(&["low", "low", "low", "lowest", "newer", "newer"]);
        let bpe = Bpe::train(words.iter(), 10);
        assert!(!bpe.merges.is_empty());
        // "lo" (freq 4) should be merged before anything in "newer" (freq 2).
        let lo_pos = bpe.merges.iter().position(|(a, b)| a == "l" && b == "o");
        assert!(lo_pos.is_some(), "merges: {:?}", bpe.merges);
    }

    #[test]
    fn segment_join_roundtrip() {
        let words = corpus(&[
            "MPI_Send", "MPI_Send", "MPI_Recv", "MPI_Recv", "rank", "rank",
        ]);
        let bpe = Bpe::train(words.iter(), 30);
        for w in ["MPI_Send", "MPI_Recv", "rank", "unseen_word"] {
            let units = bpe.segment(w);
            let back = Bpe::join(&units);
            assert_eq!(back, vec![w.to_string()], "units: {units:?}");
        }
    }

    #[test]
    fn segment_all_preserves_word_boundaries() {
        let words = corpus(&["ab", "ab", "cd", "cd"]);
        let bpe = Bpe::train(words.iter(), 5);
        let toks: Vec<String> = corpus(&["ab", "cd", "ab"]);
        let units = bpe.segment_all(&toks);
        assert_eq!(Bpe::join(&units), toks);
    }

    #[test]
    fn frequent_words_become_single_units() {
        let mut words = Vec::new();
        for _ in 0..50 {
            words.push("rank".to_string());
        }
        let bpe = Bpe::train(words.iter(), 10);
        let units = bpe.segment("rank");
        assert_eq!(units.len(), 1, "fully merged: {units:?}");
        assert_eq!(units[0], format!("rank{END}"));
    }

    #[test]
    fn empty_and_single_char() {
        let words = corpus(&["a", "a", "bc"]);
        let bpe = Bpe::train(words.iter(), 4);
        assert!(bpe.segment("").is_empty());
        let one = bpe.segment("a");
        assert_eq!(Bpe::join(&one), vec!["a".to_string()]);
    }

    #[test]
    fn training_deterministic() {
        let words = corpus(&["alpha", "beta", "alpha", "gamma", "beta", "alpha"]);
        let a = Bpe::train(words.iter(), 16);
        let b = Bpe::train(words.iter(), 16);
        assert_eq!(a.merges, b.merges);
    }

    #[test]
    fn subword_count_shrinks_with_merges() {
        let words: Vec<String> = (0..40).map(|_| "MPI_Comm_rank".to_string()).collect();
        let none = Bpe { merges: vec![] };
        let trained = Bpe::train(words.iter(), 40);
        assert!(trained.segment("MPI_Comm_rank").len() < none.segment("MPI_Comm_rank").len());
    }
}
