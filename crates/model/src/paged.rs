//! Paged KV-cache storage: fixed-size, reference-counted pages handed out
//! by a [`PagePool`] with a free list.
//!
//! The contiguous cache layout reserves `max_dec_len` rows per attention
//! head up front — at typical output lengths most of that memory is never
//! touched, and a beam fork has to deep-copy every byte that *was*. Paged
//! storage fixes both at once:
//!
//! * **Allocation is page-granular.** A head buffer (`PagedRows`) is a
//!   list of page ids; a page holds [`PAGE_ROWS`] rows. Appending past the
//!   last page's capacity grabs one page from the pool's free list (or
//!   grows the slab). Resident bytes track *generated* tokens, not the
//!   worst-case cap — roughly a `max_dec_len / generated` saving per lane.
//! * **Forks are copy-on-write.** `PagedRows::fork` copies the page-id
//!   list and increments each page's refcount — O(pages) ids, zero row
//!   data. Full pages are immutable from then on and stay shared forever.
//!   Only when a writer appends into a *partial* page that others still
//!   reference does it copy that one page (the pool's COW counter records
//!   these). Beam search forks hypotheses every step; this turns each fork
//!   from a whole-cache memcpy into a handful of refcount bumps.
//! * **Pages are recycled.** Dropping a fork decrements refcounts; pages
//!   that hit zero go back on the free list and are handed out again
//!   without touching the allocator. [`PoolStats`] exposes live/peak/shared
//!   counts so serving code (and the property-test harness, which asserts
//!   zero leaked pages after every random schedule) can watch the pool.
//!
//! # Page-size trade-off
//!
//! Small pages waste less memory on the final partial page (≤ `rows·width`
//! floats per buffer) and make COW copies cheaper, but mean more page-list
//! entries to walk and more allocations; large pages amortize bookkeeping
//! but re-introduce over-reservation and make each COW copy bigger. The
//! default [`PAGE_ROWS`] = 16 keeps the partial-page waste under 7% at the
//! serving shapes in `benches/model.rs` while a 64-token generation still
//! fits in 4 pages per head. [`PagePool::with_page_rows`] exists so tests
//! can stress odd sizes (including 1-row pages, the worst case for
//! bookkeeping and the best for sharing granularity).
//!
//! # Numerics
//!
//! Storage only. Scores are per-row dot products (`dot_rows`) and the
//! weighted value sum accumulates rows in ascending order into one
//! accumulator (`vecmat_acc`), so walking the page list produces **bitwise**
//! the contiguous result — see the block-split test in
//! `mpirical_tensor::matmul` and the property suite in
//! `tests/paged_cache_props.rs`.
//!
//! The pool handle is an `Arc<RwLock<…>>` (the offline `parking_lot` shim):
//! forks share the pool by cloning the handle and caches release their pages
//! on `Drop` without threading a `&mut pool` through every call site, while
//! the handle stays `Send + Sync` so lanes of one scheduler can append and
//! attend from worker threads and the sharded engine can move whole pools
//! into per-worker threads. Mutation (append/fork/release) takes the write
//! lock briefly; attention reads take the read lock, so parallel lanes read
//! shared pages concurrently.

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Rows per page of the default pool (see module docs for the trade-off).
pub const PAGE_ROWS: usize = 16;

/// Index into the pool's page slab.
pub(crate) type PageId = u32;

#[derive(Debug)]
struct Page {
    /// `page_rows * row_width` floats; rows beyond a buffer's length are
    /// stale garbage and never read.
    data: Vec<f32>,
    /// Buffers currently referencing this page (0 ⇒ on the free list).
    refs: u32,
}

/// The pool's mutable state, accessed through [`PagePool::lock`] (exclusive)
/// or [`PagePool::read`] (shared). One lock per decoder layer per step keeps
/// lock traffic negligible.
#[derive(Debug)]
pub(crate) struct PoolInner {
    row_width: usize,
    page_rows: usize,
    pages: Vec<Page>,
    free: Vec<PageId>,
    live: usize,
    peak_live: usize,
    cow_copies: u64,
}

impl PoolInner {
    pub(crate) fn row_width(&self) -> usize {
        self.row_width
    }

    fn alloc(&mut self) -> PageId {
        let id = match self.free.pop() {
            Some(id) => {
                self.pages[id as usize].refs = 1;
                id
            }
            None => {
                let id = PageId::try_from(self.pages.len()).expect("page slab fits in u32 ids");
                self.pages.push(Page {
                    data: vec![0.0; self.page_rows * self.row_width],
                    refs: 1,
                });
                id
            }
        };
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        id
    }

    fn incref(&mut self, id: PageId) {
        self.pages[id as usize].refs += 1;
    }

    fn decref(&mut self, id: PageId) {
        let page = &mut self.pages[id as usize];
        debug_assert!(page.refs > 0, "double free of page {id}");
        page.refs -= 1;
        if page.refs == 0 {
            self.live -= 1;
            self.free.push(id);
        }
    }

    fn refs(&self, id: PageId) -> u32 {
        self.pages[id as usize].refs
    }

    fn page(&self, id: PageId) -> &[f32] {
        &self.pages[id as usize].data
    }

    /// Copy the first `rows` rows of `src` into `dst` (the COW half-copy —
    /// only the filled prefix of a partial page moves).
    fn copy_rows(&mut self, src: PageId, dst: PageId, rows: usize) {
        let n = rows * self.row_width;
        let (s, d) = (src as usize, dst as usize);
        debug_assert_ne!(s, d);
        if s < d {
            let (lo, hi) = self.pages.split_at_mut(d);
            hi[0].data[..n].copy_from_slice(&lo[s].data[..n]);
        } else {
            let (lo, hi) = self.pages.split_at_mut(s);
            lo[d].data[..n].copy_from_slice(&hi[0].data[..n]);
        }
    }
}

/// Aggregate pool telemetry (see [`PagePool::stats`]). Serializable so a
/// serving daemon can export it over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PoolStats {
    /// Pages currently referenced by at least one buffer.
    pub pages_live: usize,
    /// High-water mark of `pages_live` over the pool's lifetime.
    pub pages_peak: usize,
    /// Pages currently referenced by more than one buffer (COW-shared).
    pub pages_shared: usize,
    /// Partial-page copies forced by appends into shared pages.
    pub cow_copies: u64,
    /// Rows per page.
    pub page_rows: usize,
    /// Bytes per page (`page_rows · row_width · 4`).
    pub page_bytes: usize,
}

impl PoolStats {
    /// Bytes resident right now.
    pub fn live_bytes(&self) -> usize {
        self.pages_live * self.page_bytes
    }

    /// High-water resident bytes.
    pub fn peak_bytes(&self) -> usize {
        self.pages_peak * self.page_bytes
    }

    /// Fold another pool's counters into this one (fleet-wide totals for
    /// multi-pool deployments). Page geometry is taken from `self`; peaks
    /// sum, which over-reports a fleet peak whose pools peaked at
    /// different times — fine for a telemetry ceiling.
    pub fn absorb(&mut self, other: &PoolStats) {
        self.pages_live += other.pages_live;
        self.pages_peak += other.pages_peak;
        self.pages_shared += other.pages_shared;
        self.cow_copies += other.cow_copies;
    }
}

/// Shared handle to a page pool (cheap to clone; forks and lanes that share
/// a handle share its pages).
#[derive(Debug, Clone)]
pub struct PagePool {
    inner: Arc<RwLock<PoolInner>>,
}

impl PagePool {
    /// Pool for rows of `row_width` floats with the default [`PAGE_ROWS`].
    pub fn new(row_width: usize) -> PagePool {
        PagePool::with_page_rows(row_width, PAGE_ROWS)
    }

    /// Pool with an explicit page size (tests stress odd sizes; serving
    /// sticks with the default).
    pub fn with_page_rows(row_width: usize, page_rows: usize) -> PagePool {
        assert!(row_width >= 1, "row width must be at least 1");
        assert!(page_rows >= 1, "page size must be at least 1 row");
        PagePool {
            inner: Arc::new(RwLock::new(PoolInner {
                row_width,
                page_rows,
                pages: Vec::new(),
                free: Vec::new(),
                live: 0,
                peak_live: 0,
                cow_copies: 0,
            })),
        }
    }

    /// Floats per row (the attention head width the pool was sized for).
    pub fn row_width(&self) -> usize {
        self.inner.read().row_width
    }

    /// Take the exclusive write lock (appends, forks, releases — one brief
    /// lock per layer per decode step).
    pub(crate) fn lock(&self) -> RwLockWriteGuard<'_, PoolInner> {
        self.inner.write()
    }

    /// Take a shared read lock (attention walks page data concurrently
    /// across lanes).
    pub(crate) fn read(&self) -> RwLockReadGuard<'_, PoolInner> {
        self.inner.read()
    }

    /// Whether `other` is a handle to this same pool.
    pub fn same_pool(&self, other: &PagePool) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Current pool telemetry.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.read();
        PoolStats {
            pages_live: inner.live,
            pages_peak: inner.peak_live,
            pages_shared: inner.pages.iter().filter(|p| p.refs > 1).count(),
            cow_copies: inner.cow_copies,
            page_rows: inner.page_rows,
            page_bytes: inner.page_rows * inner.row_width * std::mem::size_of::<f32>(),
        }
    }
}

/// A growing `[len, row_width]` buffer stored as a list of pool pages —
/// the paged replacement for one per-head K or V tensor.
///
/// Explicit-release discipline: the owner (`DecoderCache`) calls
/// [`release`](Self::release) from its `Drop`; `PagedRows` itself has no
/// pool handle, so dropping one without releasing leaks its pages (which is
/// exactly what the pool's `pages_live` stat and the property harness would
/// catch).
#[derive(Debug, Default)]
pub(crate) struct PagedRows {
    pages: Vec<PageId>,
    len: usize,
}

impl PagedRows {
    pub(crate) fn new() -> PagedRows {
        PagedRows::default()
    }

    /// Rows appended so far.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Append one row, claiming a fresh page on a page boundary and
    /// copy-on-writing the final page if it is shared with a fork.
    pub(crate) fn push_row(&mut self, pool: &mut PoolInner, row: &[f32]) {
        let width = pool.row_width;
        assert_eq!(row.len(), width, "row width mismatch");
        let offset = self.len % pool.page_rows;
        if offset == 0 {
            self.pages.push(pool.alloc());
        } else {
            let last = *self.pages.last().expect("partial page exists");
            if pool.refs(last) > 1 {
                // Copy-on-write: move the filled prefix to a private page.
                let fresh = pool.alloc();
                pool.copy_rows(last, fresh, offset);
                pool.decref(last);
                pool.cow_copies += 1;
                *self.pages.last_mut().expect("partial page exists") = fresh;
            }
        }
        let last = *self.pages.last().expect("page just ensured") as usize;
        pool.pages[last].data[offset * width..(offset + 1) * width].copy_from_slice(row);
        self.len += 1;
    }

    /// Copy-on-write fork: share every page with the parent (refcount bump
    /// per page, no row data copied).
    pub(crate) fn fork(&self, pool: &mut PoolInner) -> PagedRows {
        for &id in &self.pages {
            pool.incref(id);
        }
        PagedRows {
            pages: self.pages.clone(),
            len: self.len,
        }
    }

    /// Copy-on-write fork of the first `rows` rows only: share exactly the
    /// pages that hold them (refcount bump per retained page, no row data
    /// copied). `rows` must be page-aligned unless it equals the full
    /// length — the prefix index hands out whole pages so a later append
    /// into the final shared page goes through the normal COW path.
    pub(crate) fn fork_prefix(&self, pool: &mut PoolInner, rows: usize) -> PagedRows {
        debug_assert!(rows <= self.len, "prefix fork past end");
        debug_assert!(
            rows == self.len || rows.is_multiple_of(pool.page_rows),
            "prefix forks are page-aligned"
        );
        let n_pages = rows.div_ceil(pool.page_rows);
        let pages: Vec<PageId> = self.pages[..n_pages].to_vec();
        for &id in &pages {
            pool.incref(id);
        }
        PagedRows { pages, len: rows }
    }

    /// Drop all page references, returning freed pages to the pool.
    pub(crate) fn release(&mut self, pool: &mut PoolInner) {
        for &id in &self.pages {
            pool.decref(id);
        }
        self.pages.clear();
        self.len = 0;
    }

    /// The filled row-slices of each page, in order: full pages yield
    /// `page_rows · width` floats, the final partial page only its filled
    /// prefix. Concatenated, this is exactly the contiguous `[len, width]`
    /// buffer.
    pub(crate) fn page_slices<'p>(
        &'p self,
        pool: &'p PoolInner,
    ) -> impl Iterator<Item = &'p [f32]> + 'p {
        let (rows_per, width) = (pool.page_rows, pool.row_width);
        let len = self.len;
        self.pages.iter().enumerate().map(move |(i, &id)| {
            let filled = (len - i * rows_per).min(rows_per);
            &pool.page(id)[..filled * width]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_of(buf: &PagedRows, pool: &PagePool) -> Vec<f32> {
        let inner = pool.lock();
        buf.page_slices(&inner).flatten().copied().collect()
    }

    #[test]
    fn append_read_roundtrip_across_page_boundaries() {
        for page_rows in [1usize, 2, 3, 16] {
            let pool = PagePool::with_page_rows(4, page_rows);
            let mut buf = PagedRows::new();
            let mut want = Vec::new();
            for r in 0..11 {
                let row: Vec<f32> = (0..4).map(|c| (r * 4 + c) as f32).collect();
                buf.push_row(&mut pool.lock(), &row);
                want.extend_from_slice(&row);
            }
            assert_eq!(buf.len(), 11);
            assert_eq!(rows_of(&buf, &pool), want, "page_rows={page_rows}");
            buf.release(&mut pool.lock());
            assert_eq!(pool.stats().pages_live, 0);
        }
    }

    #[test]
    fn fork_shares_pages_and_cow_isolates_appends() {
        let pool = PagePool::with_page_rows(2, 4);
        let mut a = PagedRows::new();
        for r in 0..6 {
            a.push_row(&mut pool.lock(), &[r as f32, -(r as f32)]);
        }
        // 6 rows over 4-row pages: one full page + one half-full page.
        assert_eq!(pool.stats().pages_live, 2);

        let mut b = a.fork(&mut pool.lock());
        assert_eq!(pool.stats().pages_shared, 2);
        assert_eq!(pool.stats().pages_live, 2, "fork copies no pages");
        let before = rows_of(&a, &pool);
        assert_eq!(rows_of(&b, &pool), before);

        // Appending through the fork COWs only the partial page…
        b.push_row(&mut pool.lock(), &[100.0, 200.0]);
        let s = pool.stats();
        assert_eq!(s.cow_copies, 1);
        assert_eq!(s.pages_live, 3);
        assert_eq!(s.pages_shared, 1, "the full page stays shared");
        // …and the parent is untouched.
        assert_eq!(rows_of(&a, &pool), before);
        assert_eq!(rows_of(&b, &pool)[12..], [100.0, 200.0]);

        // The parent's next append sees refcount 1 again: no second copy.
        a.push_row(&mut pool.lock(), &[7.0, 8.0]);
        assert_eq!(pool.stats().cow_copies, 1);

        a.release(&mut pool.lock());
        b.release(&mut pool.lock());
        let s = pool.stats();
        assert_eq!(s.pages_live, 0, "all pages returned");
        assert_eq!(s.pages_peak, 3);
    }

    #[test]
    fn fork_prefix_shares_only_the_retained_pages() {
        let pool = PagePool::with_page_rows(2, 4);
        let mut a = PagedRows::new();
        for r in 0..10 {
            a.push_row(&mut pool.lock(), &[r as f32, r as f32 + 0.5]);
        }
        // 10 rows over 4-row pages: 2 full pages + 1 half-full page.
        assert_eq!(pool.stats().pages_live, 3);

        // A one-page prefix fork references only the first page.
        let mut p = a.fork_prefix(&mut pool.lock(), 4);
        assert_eq!(p.len(), 4);
        let s = pool.stats();
        assert_eq!(s.pages_live, 3, "prefix fork copies no pages");
        assert_eq!(s.pages_shared, 1, "only the retained page is shared");
        assert_eq!(rows_of(&p, &pool), rows_of(&a, &pool)[..8]);

        // Appending at the fork's page boundary claims a fresh page without
        // touching the parent's second page.
        let before = rows_of(&a, &pool);
        p.push_row(&mut pool.lock(), &[100.0, 200.0]);
        assert_eq!(pool.stats().cow_copies, 0);
        assert_eq!(rows_of(&a, &pool), before);
        assert_eq!(rows_of(&p, &pool)[8..], [100.0, 200.0]);

        // A full-length fork may be unaligned (it is just `fork`).
        let mut full = a.fork_prefix(&mut pool.lock(), 10);
        assert_eq!(rows_of(&full, &pool), before);

        p.release(&mut pool.lock());
        full.release(&mut pool.lock());
        a.release(&mut pool.lock());
        assert_eq!(pool.stats().pages_live, 0);
    }

    #[test]
    fn freed_pages_are_recycled_not_reallocated() {
        let pool = PagePool::with_page_rows(1, 2);
        let mut a = PagedRows::new();
        for _ in 0..8 {
            a.push_row(&mut pool.lock(), &[1.0]);
        }
        a.release(&mut pool.lock());
        let mut b = PagedRows::new();
        for _ in 0..8 {
            b.push_row(&mut pool.lock(), &[2.0]);
        }
        let s = pool.stats();
        assert_eq!(s.pages_live, 4);
        assert_eq!(s.pages_peak, 4, "second pass reused the freed slab");
        b.release(&mut pool.lock());
    }

    #[test]
    fn boundary_append_on_shared_full_page_needs_no_cow() {
        let pool = PagePool::with_page_rows(1, 2);
        let mut a = PagedRows::new();
        a.push_row(&mut pool.lock(), &[1.0]);
        a.push_row(&mut pool.lock(), &[2.0]);
        let mut b = a.fork(&mut pool.lock());
        // Both sides append at a page boundary: fresh pages, zero copies.
        a.push_row(&mut pool.lock(), &[3.0]);
        b.push_row(&mut pool.lock(), &[4.0]);
        assert_eq!(pool.stats().cow_copies, 0);
        assert_eq!(rows_of(&a, &pool), [1.0, 2.0, 3.0]);
        assert_eq!(rows_of(&b, &pool), [1.0, 2.0, 4.0]);
        a.release(&mut pool.lock());
        b.release(&mut pool.lock());
        assert_eq!(pool.stats().pages_live, 0);
    }
}
