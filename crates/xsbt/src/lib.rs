//! # mpirical-xsbt
//!
//! Linearized AST representations used as the structural input channel of
//! MPI-RICAL (paper §IV-A).
//!
//! Two traversals are provided:
//!
//! * [`sbt`] — the classic *Structure-Based Traversal* of Hu et al. (ICPC
//!   2018): every AST node `X` contributes `( X … ) X`, leaves included.
//!   SBT sequences are unambiguous (the tree can be reconstructed) but are
//!   typically **3× longer than the source code**.
//! * [`xsbt`] — SPT-Code's *X-SBT*: an XML-like re-encoding that keeps only
//!   **expression-level nodes and above** (no identifier/literal leaves) and
//!   writes composite nodes as `<kind> … </kind>` and childless nodes as
//!   `<kind/>`. The paper reports this cuts sequence length by more than
//!   half relative to SBT, which this crate's tests assert on generated
//!   programs.
//!
//! Node kind names follow TreeSitter's C grammar (`compound_statement`,
//! `call_expression`, `pointer_expression`, …) so the sequences look like the
//! example in the paper's Figure 2.

use mpirical_cparse::{Block, Expr, ForInit, Init, Item, Program, Stmt, UnOp};
use serde::{Deserialize, Serialize};

/// A linearization token. For SBT these include structural parens and leaf
/// texts; for X-SBT they are tags like `<call_expression>` / `</…>` / `<…/>`.
pub type LinToken = String;

/// Which traversal to produce — used by the ablation harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Linearization {
    Sbt,
    Xsbt,
}

// ---------------------------------------------------------------------------
// Internal generic tree: both traversals are defined over this.
// ---------------------------------------------------------------------------

/// A lightweight syntax-kind tree extracted from the typed AST.
#[derive(Debug, Clone, PartialEq)]
pub struct KindNode {
    /// TreeSitter-style node kind, e.g. `call_expression`.
    pub kind: &'static str,
    /// Leaf payload (identifier text, literal spelling); only set on leaves.
    pub text: Option<String>,
    pub children: Vec<KindNode>,
}

impl KindNode {
    fn branch(kind: &'static str, children: Vec<KindNode>) -> Self {
        KindNode {
            kind,
            text: None,
            children,
        }
    }

    fn leaf(kind: &'static str, text: impl Into<String>) -> Self {
        KindNode {
            kind,
            text: Some(text.into()),
            children: Vec::new(),
        }
    }

    /// Number of nodes in the subtree (including `self`).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(KindNode::size).sum::<usize>()
    }
}

/// Build the kind tree for a whole program.
pub fn kind_tree(prog: &Program) -> KindNode {
    let mut children = Vec::new();
    for d in &prog.directives {
        children.push(KindNode::leaf("preproc_directive", d.clone()));
    }
    for item in &prog.items {
        match item {
            Item::Function(f) => {
                let mut fc = Vec::new();
                fc.push(KindNode::leaf("type_identifier", f.return_type.render()));
                fc.push(KindNode::leaf("identifier", f.name.clone()));
                for p in &f.params {
                    fc.push(KindNode::branch(
                        "parameter_declaration",
                        vec![
                            KindNode::leaf("type_identifier", p.type_spec.render()),
                            KindNode::leaf("identifier", p.name.clone()),
                        ],
                    ));
                }
                fc.push(block_node(&f.body));
                children.push(KindNode::branch("function_definition", fc));
            }
            Item::Declaration(d) => children.push(decl_node(d)),
            Item::Error { lines, .. } => children.push(KindNode::leaf("ERROR", lines.join(" "))),
        }
    }
    KindNode::branch("translation_unit", children)
}

fn block_node(b: &Block) -> KindNode {
    KindNode::branch(
        "compound_statement",
        b.stmts.iter().map(stmt_node).collect(),
    )
}

fn decl_node(d: &mpirical_cparse::Declaration) -> KindNode {
    let mut children = vec![KindNode::leaf("type_identifier", d.type_spec.render())];
    for decl in &d.declarators {
        let mut dc = vec![KindNode::leaf("identifier", decl.name.clone())];
        for dim in decl.arrays.iter().flatten() {
            dc.push(expr_node(dim));
        }
        if let Some(init) = &decl.init {
            dc.push(init_node(init));
        }
        children.push(if decl.arrays.is_empty() {
            KindNode::branch("init_declarator", dc)
        } else {
            KindNode::branch("array_declarator", dc)
        });
    }
    KindNode::branch("declaration", children)
}

fn init_node(i: &Init) -> KindNode {
    match i {
        Init::Expr(e) => expr_node(e),
        Init::List(items) => {
            KindNode::branch("initializer_list", items.iter().map(init_node).collect())
        }
    }
}

fn stmt_node(s: &Stmt) -> KindNode {
    match s {
        Stmt::Decl(d) => decl_node(d),
        Stmt::Expr { expr, .. } => match expr {
            Some(e) => KindNode::branch("expression_statement", vec![expr_node(e)]),
            None => KindNode::branch("expression_statement", vec![]),
        },
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            let mut children = vec![
                KindNode::branch("parenthesized_expression", vec![expr_node(cond)]),
                stmt_node(then_branch),
            ];
            if let Some(e) = else_branch {
                children.push(KindNode::branch("else_clause", vec![stmt_node(e)]));
            }
            KindNode::branch("if_statement", children)
        }
        Stmt::While { cond, body, .. } => KindNode::branch(
            "while_statement",
            vec![
                KindNode::branch("parenthesized_expression", vec![expr_node(cond)]),
                stmt_node(body),
            ],
        ),
        Stmt::DoWhile { body, cond, .. } => KindNode::branch(
            "do_statement",
            vec![
                stmt_node(body),
                KindNode::branch("parenthesized_expression", vec![expr_node(cond)]),
            ],
        ),
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            let mut children = Vec::new();
            match init {
                ForInit::None => {}
                ForInit::Decl(d) => children.push(decl_node(d)),
                ForInit::Expr(e) => children.push(expr_node(e)),
            }
            if let Some(c) = cond {
                children.push(expr_node(c));
            }
            if let Some(st) = step {
                children.push(expr_node(st));
            }
            children.push(stmt_node(body));
            KindNode::branch("for_statement", children)
        }
        Stmt::Return { expr, .. } => KindNode::branch(
            "return_statement",
            expr.as_ref().map(expr_node).into_iter().collect(),
        ),
        Stmt::Break { .. } => KindNode::branch("break_statement", vec![]),
        Stmt::Continue { .. } => KindNode::branch("continue_statement", vec![]),
        Stmt::Block(b) => block_node(b),
        Stmt::Error { lines, .. } => KindNode::leaf("ERROR", lines.join(" ")),
    }
}

fn expr_node(e: &Expr) -> KindNode {
    match e {
        Expr::IntLit(v) => KindNode::leaf("number_literal", v.to_string()),
        Expr::FloatLit(v) => {
            KindNode::leaf("number_literal", mpirical_cparse::printer::format_float(*v))
        }
        Expr::StrLit(s) => KindNode::leaf("string_literal", s.clone()),
        Expr::CharLit(c) => KindNode::leaf("char_literal", c.to_string()),
        Expr::Ident(n) => KindNode::leaf("identifier", n.clone()),
        Expr::Call { callee, args, .. } => {
            let mut children = vec![KindNode::leaf("identifier", callee.clone())];
            if !args.is_empty() {
                children.push(KindNode::branch(
                    "argument_list",
                    args.iter().map(expr_node).collect(),
                ));
            }
            KindNode::branch("call_expression", children)
        }
        Expr::Binary { lhs, rhs, .. } => {
            KindNode::branch("binary_expression", vec![expr_node(lhs), expr_node(rhs)])
        }
        Expr::Unary { op, operand } => {
            // TreeSitter calls `*p`/`&x` pointer_expression, `++`/`--`
            // update_expression, the rest unary_expression.
            let kind = match op {
                UnOp::Deref | UnOp::AddrOf => "pointer_expression",
                UnOp::PreInc | UnOp::PreDec | UnOp::PostInc | UnOp::PostDec => "update_expression",
                _ => "unary_expression",
            };
            KindNode::branch(kind, vec![expr_node(operand)])
        }
        Expr::Assign { lhs, rhs, .. } => KindNode::branch(
            "assignment_expression",
            vec![expr_node(lhs), expr_node(rhs)],
        ),
        Expr::Index { base, index } => KindNode::branch(
            "subscript_expression",
            vec![expr_node(base), expr_node(index)],
        ),
        Expr::Member { base, field, .. } => KindNode::branch(
            "field_expression",
            vec![
                expr_node(base),
                KindNode::leaf("field_identifier", field.clone()),
            ],
        ),
        Expr::Cast { ty, operand, .. } => KindNode::branch(
            "cast_expression",
            vec![
                KindNode::leaf("type_descriptor", ty.render()),
                expr_node(operand),
            ],
        ),
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => KindNode::branch(
            "conditional_expression",
            vec![expr_node(cond), expr_node(then_expr), expr_node(else_expr)],
        ),
        Expr::SizeofType { ty, .. } => KindNode::branch(
            "sizeof_expression",
            vec![KindNode::leaf("type_descriptor", ty.render())],
        ),
        Expr::Comma { lhs, rhs } => {
            KindNode::branch("comma_expression", vec![expr_node(lhs), expr_node(rhs)])
        }
    }
}

// ---------------------------------------------------------------------------
// SBT
// ---------------------------------------------------------------------------

/// Classic Structure-Based Traversal: `( X child… ) X` per node, with leaf
/// text attached as `kind=text`.
pub fn sbt(prog: &Program) -> Vec<LinToken> {
    let tree = kind_tree(prog);
    let mut out = Vec::with_capacity(tree.size() * 3);
    sbt_node(&tree, &mut out);
    out
}

fn sbt_node(n: &KindNode, out: &mut Vec<LinToken>) {
    out.push("(".to_string());
    match &n.text {
        Some(t) => out.push(format!("{}={}", n.kind, t)),
        None => out.push(n.kind.to_string()),
    }
    for c in &n.children {
        sbt_node(c, out);
    }
    out.push(")".to_string());
    out.push(n.kind.to_string());
}

// ---------------------------------------------------------------------------
// X-SBT
// ---------------------------------------------------------------------------

/// Kinds below the expression level: excluded from X-SBT entirely.
fn is_sub_expression_leaf(kind: &str) -> bool {
    matches!(
        kind,
        "identifier"
            | "field_identifier"
            | "type_identifier"
            | "type_descriptor"
            | "number_literal"
            | "string_literal"
            | "char_literal"
            | "preproc_directive"
    )
}

/// SPT-Code's X-SBT: XML-like tags for expression-level-and-above nodes only.
pub fn xsbt(prog: &Program) -> Vec<LinToken> {
    let tree = kind_tree(prog);
    let mut out = Vec::with_capacity(tree.size());
    for child in &tree.children {
        // The translation_unit wrapper itself is omitted, matching the
        // paper's Figure 2 which starts directly at parameter_declaration.
        xsbt_node(child, &mut out);
    }
    out
}

fn xsbt_node(n: &KindNode, out: &mut Vec<LinToken>) {
    if is_sub_expression_leaf(n.kind) {
        return;
    }
    let kept_children: Vec<&KindNode> = n
        .children
        .iter()
        .filter(|c| !is_sub_expression_leaf(c.kind))
        .collect();
    if kept_children.is_empty() {
        out.push(format!("<{}/>", n.kind));
    } else {
        out.push(format!("<{}>", n.kind));
        for c in kept_children {
            xsbt_node(c, out);
        }
        out.push(format!("</{}>", n.kind));
    }
}

/// Space-joined convenience forms.
pub fn sbt_string(prog: &Program) -> String {
    sbt(prog).join(" ")
}

pub fn xsbt_string(prog: &Program) -> String {
    xsbt(prog).join(" ")
}

/// Linearize with the requested traversal.
pub fn linearize(prog: &Program, which: Linearization) -> Vec<LinToken> {
    match which {
        Linearization::Sbt => sbt(prog),
        Linearization::Xsbt => xsbt(prog),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpirical_cparse::parse_strict;

    const SRC: &str = r#"#include <mpi.h>
int main(int argc, char **argv) {
    int rank;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    while (rank < 4) {
        rank = rank + 1;
    }
    MPI_Finalize();
    return 0;
}
"#;

    #[test]
    fn xsbt_contains_expected_tags() {
        let prog = parse_strict(SRC).unwrap();
        let seq = xsbt_string(&prog);
        for tag in [
            "<function_definition>",
            "<parameter_declaration/>",
            "<compound_statement>",
            "<expression_statement>",
            "<call_expression>",
            "<argument_list>",
            "<pointer_expression/>",
            "<while_statement>",
            "<parenthesized_expression>",
            "<binary_expression/>",
            "<assignment_expression>",
            "<return_statement/>",
            "</compound_statement>",
        ] {
            assert!(seq.contains(tag), "missing {tag} in: {seq}");
        }
    }

    #[test]
    fn xsbt_excludes_identifiers_and_literals() {
        let prog = parse_strict(SRC).unwrap();
        let seq = xsbt_string(&prog);
        assert!(!seq.contains("rank"), "identifiers must not leak: {seq}");
        assert!(
            !seq.contains("MPI_Init"),
            "callee names must not leak: {seq}"
        );
        assert!(!seq.contains("<identifier"));
        assert!(!seq.contains("number_literal"));
    }

    #[test]
    fn sbt_is_reconstructible_bracketing() {
        let prog = parse_strict(SRC).unwrap();
        let seq = sbt(&prog);
        // Balanced: every `(` has a matching `)` + kind echo.
        let opens = seq.iter().filter(|t| *t == "(").count();
        let closes = seq.iter().filter(|t| *t == ")").count();
        assert_eq!(opens, closes);
        assert!(opens > 10);
        // SBT carries leaf text.
        assert!(seq.iter().any(|t| t.contains("identifier=rank")));
    }

    #[test]
    fn xsbt_at_most_half_of_sbt() {
        // The SPT-Code paper's motivation: X-SBT cuts sequence length by
        // more than half vs SBT.
        let prog = parse_strict(SRC).unwrap();
        assert!(xsbt(&prog).len() * 2 < sbt(&prog).len());
    }

    #[test]
    fn xsbt_tags_balanced() {
        let prog = parse_strict(SRC).unwrap();
        let mut depth = 0i64;
        for t in xsbt(&prog) {
            if t.ends_with("/>") {
                continue;
            } else if t.starts_with("</") {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close");
            } else {
                depth += 1;
            }
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn empty_program() {
        let prog = parse_strict("int main() { return 0; }").unwrap();
        let seq = xsbt(&prog);
        assert!(seq.len() >= 4); // function_definition, compound, return, closes
    }

    #[test]
    fn xsbt_is_deterministic() {
        let prog = parse_strict(SRC).unwrap();
        assert_eq!(xsbt(&prog), xsbt(&prog));
    }

    #[test]
    fn removal_changes_xsbt() {
        // Removing an MPI call changes the structural sequence — the signal
        // the model learns from.
        let with_mpi = parse_strict("int main() { MPI_Init(0, 0); return 0; }").unwrap();
        let without = parse_strict("int main() { return 0; }").unwrap();
        assert_ne!(xsbt(&with_mpi), xsbt(&without));
    }

    #[test]
    fn kind_tree_size_counts_nodes() {
        let prog = parse_strict("int main() { return 0; }").unwrap();
        let t = kind_tree(&prog);
        // translation_unit + function_definition + type + name +
        // compound_statement + return_statement + number_literal = 7
        assert_eq!(t.size(), 7);
    }

    #[test]
    fn linearize_dispatch() {
        let prog = parse_strict("int main() { return 0; }").unwrap();
        assert_eq!(linearize(&prog, Linearization::Sbt), sbt(&prog));
        assert_eq!(linearize(&prog, Linearization::Xsbt), xsbt(&prog));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mpirical_cparse::{parse_strict, parse_tolerant};
    use proptest::prelude::*;

    fn gen_program(n_stmts: usize, with_mpi: bool, nest: bool) -> String {
        let mut body = String::new();
        for i in 0..n_stmts {
            body.push_str(&format!("int v{i} = {i} * 2;\n"));
        }
        if with_mpi {
            body.push_str("MPI_Init(&argc, &argv);\nMPI_Finalize();\n");
        }
        if nest {
            body.push_str("for (int i = 0; i < 4; i++) { if (i > 1) { v0 += i; } }\n");
        }
        body.push_str("return 0;\n");
        format!("int main(int argc, char **argv) {{\n{body}}}\n")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// X-SBT never leaks identifier text and is always balanced.
        #[test]
        fn xsbt_invariants(n in 0usize..8, mpi in any::<bool>(), nest in any::<bool>()) {
            let src = gen_program(n, mpi, nest);
            let prog = parse_strict(&src).unwrap();
            let seq = xsbt(&prog);
            let mut depth = 0i64;
            for t in &seq {
                prop_assert!(t.starts_with('<') && t.ends_with('>'));
                if t.ends_with("/>") { continue; }
                if t.starts_with("</") { depth -= 1; } else { depth += 1; }
                prop_assert!(depth >= 0);
            }
            prop_assert_eq!(depth, 0);
            prop_assert!(!seq.iter().any(|t| t.contains("v0")));
        }

        /// SBT is strictly longer than X-SBT for nonempty programs.
        #[test]
        fn sbt_longer_than_xsbt(n in 1usize..8) {
            let src = gen_program(n, true, true);
            let prog = parse_strict(&src).unwrap();
            prop_assert!(sbt(&prog).len() > xsbt(&prog).len());
        }

        /// Linearization is total on tolerant parses of arbitrary fragments.
        #[test]
        fn total_on_tolerant_output(src in "[a-z(){};=+0-9 ]{0,80}") {
            let out = parse_tolerant(&src);
            let _ = xsbt(&out.program);
            let _ = sbt(&out.program);
        }
    }
}
