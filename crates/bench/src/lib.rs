//! # mpirical-bench
//!
//! Reproduction harness for every table and figure in the MPI-RICAL paper,
//! plus Criterion micro-benchmarks of the substrates.
//!
//! The `repro` binary regenerates, per experiment id:
//!
//! | command | paper artifact |
//! |---|---|
//! | `repro table1a` | Table Ia — corpus code-length distribution |
//! | `repro table1b` | Table Ib — MPI Common Core per-file counts |
//! | `repro fig3` | Figure 3 — Init–Finalize span ratio histogram |
//! | `repro fig5` | Figure 5 — training/validation loss + accuracy curves |
//! | `repro table2` | Table II — test-set quality metrics |
//! | `repro table3` | Table III — the 11 numerical benchmark programs |
//! | `repro fig6` | Figure 6 — worked TP/FP/FN alignment example |
//! | `repro ablation-xsbt` | (ours) code-only vs code+X-SBT input |
//! | `repro ablation-tolerance` | (ours) 0/1/2-line tolerance sweep |
//! | `repro all` | everything above |
//!
//! This library crate hosts the pieces shared between the binary and the
//! Criterion benches: scale presets and the train-once-cache-on-disk helper.

use mpirical::{InputFormat, MpiRical, MpiRicalConfig};
use mpirical_corpus::{generate_dataset, Corpus, CorpusConfig, Dataset, Splits};
use mpirical_model::{EpochStats, ModelConfig, TrainConfig, TrainReport};
use std::path::PathBuf;

/// Experiment scale preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Single-core laptop scale: minutes end to end.
    Quick,
    /// Closer to the paper's corpus/model scale (hours on CPU).
    Paper,
}

impl Scale {
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// All knobs of one reproduction run.
#[derive(Debug, Clone)]
pub struct ReproOptions {
    pub scale: Scale,
    pub seed: u64,
    /// Raw corpus size (overrides the scale preset when set).
    pub programs: Option<usize>,
    /// Training epochs (overrides the preset when set).
    pub epochs: Option<usize>,
    /// Trained-assistant cache path.
    pub model_path: PathBuf,
    /// Ignore the cache and retrain.
    pub retrain: bool,
}

impl Default for ReproOptions {
    fn default() -> Self {
        ReproOptions {
            scale: Scale::Quick,
            seed: 0xC0FFEE,
            programs: None,
            epochs: None,
            model_path: PathBuf::from("target/repro-assistant.json"),
            retrain: false,
        }
    }
}

impl ReproOptions {
    /// Corpus configuration for this run.
    pub fn corpus_config(&self) -> CorpusConfig {
        let programs = self.programs.unwrap_or(match self.scale {
            Scale::Quick => 2_000,
            Scale::Paper => 50_000,
        });
        CorpusConfig {
            programs,
            seed: self.seed,
            max_tokens: 320,
            threads: 0,
        }
    }

    /// Assistant configuration for this run.
    pub fn assistant_config(&self) -> MpiRicalConfig {
        let mut cfg = MpiRicalConfig {
            seed: self.seed,
            input_format: InputFormat::CodeXsbt,
            vocab_min_freq: 2,
            ..Default::default()
        };
        match self.scale {
            Scale::Quick => {
                cfg.model = ModelConfig {
                    vocab_size: 0,
                    d_model: 64,
                    n_heads: 4,
                    d_ff: 128,
                    n_enc_layers: 2,
                    n_dec_layers: 2,
                    max_enc_len: 256,
                    max_dec_len: 232,
                    dropout: 0.0,
                };
                cfg.train = TrainConfig {
                    epochs: self.epochs.unwrap_or(5),
                    batch_size: 16,
                    lr: 6e-4,
                    warmup_steps: 60,
                    weight_decay: 0.01,
                    grad_clip: 1.0,
                    threads: 0,
                    seed: self.seed,
                    validate: true,
                };
            }
            Scale::Paper => {
                cfg.model = ModelConfig {
                    vocab_size: 0,
                    d_model: 256,
                    n_heads: 8,
                    d_ff: 1024,
                    n_enc_layers: 4,
                    n_dec_layers: 4,
                    max_enc_len: 512,
                    max_dec_len: 384,
                    dropout: 0.1,
                };
                cfg.train = TrainConfig {
                    epochs: self.epochs.unwrap_or(5),
                    batch_size: 32,
                    lr: 3e-4,
                    warmup_steps: 400,
                    weight_decay: 0.01,
                    grad_clip: 1.0,
                    threads: 0,
                    seed: self.seed,
                    validate: true,
                };
            }
        }
        cfg
    }
}

/// Generate corpus + dataset + splits for a run.
pub fn build_data(opts: &ReproOptions) -> (Corpus, Dataset, Splits) {
    let ccfg = opts.corpus_config();
    let (corpus, dataset, _) = generate_dataset(&ccfg);
    let splits = dataset.split(opts.seed);
    (corpus, dataset, splits)
}

/// Train the assistant (or load the cached artifact) and return it with the
/// training report (`None` when loaded from cache).
pub fn train_or_load(
    opts: &ReproOptions,
    splits: &Splits,
    mut on_epoch: impl FnMut(&EpochStats),
) -> (MpiRical, Option<TrainReport>) {
    if !opts.retrain {
        if let Ok(assistant) = MpiRical::load(&opts.model_path) {
            eprintln!(
                "[repro] loaded cached assistant from {} (use --retrain to rebuild)",
                opts.model_path.display()
            );
            return (assistant, None);
        }
    }
    let cfg = opts.assistant_config();
    let (assistant, report) = MpiRical::train(&splits.train, &splits.val, &cfg, |e| {
        on_epoch(e);
    });
    if let Some(dir) = opts.model_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = assistant.save(&opts.model_path) {
        eprintln!("[repro] warning: could not cache assistant: {e}");
    }
    (assistant, Some(report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn presets_are_consistent() {
        let opts = ReproOptions::default();
        let ccfg = opts.corpus_config();
        assert_eq!(ccfg.max_tokens, 320, "paper's exclusion bound");
        let acfg = opts.assistant_config();
        assert_eq!(acfg.model.d_model % acfg.model.n_heads, 0);
        let paper = ReproOptions {
            scale: Scale::Paper,
            ..Default::default()
        };
        assert!(paper.corpus_config().programs > ccfg.programs);
    }

    #[test]
    fn overrides_win() {
        let opts = ReproOptions {
            programs: Some(123),
            epochs: Some(2),
            ..Default::default()
        };
        assert_eq!(opts.corpus_config().programs, 123);
        assert_eq!(opts.assistant_config().train.epochs, 2);
    }
}
