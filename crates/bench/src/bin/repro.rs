//! `repro` — regenerate every table and figure of the MPI-RICAL paper.
//!
//! ```text
//! repro <experiment> [--scale quick|paper] [--programs N] [--epochs N]
//!                    [--seed S] [--model PATH] [--retrain]
//! experiments: table1a table1b fig3 fig5 table2 table3 fig6
//!              ablation-xsbt ablation-tolerance all
//! ```

use mpirical::{
    benchmark_programs, evaluate_dataset_with_tolerance, histogram, render_table_two, table,
    validate_program, InputFormat, MpiRical, MpiRicalConfig,
};
use mpirical_bench::{build_data, train_or_load, ReproOptions, Scale};
use mpirical_corpus::{CorpusStats, Splits};
use mpirical_metrics::{classification_report, Prf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, opts) = match parse_args(&args) {
        Ok(x) => x,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: repro <table1a|table1b|fig3|fig5|table2|table3|fig6|ablation-xsbt|ablation-tolerance|all> [--scale quick|paper] [--programs N] [--epochs N] [--seed S] [--model PATH] [--retrain]");
            std::process::exit(2);
        }
    };
    match cmd.as_str() {
        "table1a" => table1a(&opts),
        "table1b" => table1b(&opts),
        "fig3" => fig3(&opts),
        "fig5" => {
            fig5(&opts);
        }
        "table2" => table2(&opts),
        "table3" => table3(&opts),
        "fig6" => fig6(&opts),
        "ablation-xsbt" => ablation_xsbt(&opts),
        "ablation-tolerance" => ablation_tolerance(&opts),
        "baseline" => baseline(&opts),
        "all" => {
            table1a(&opts);
            table1b(&opts);
            fig3(&opts);
            fig5(&opts);
            table2(&opts);
            table3(&opts);
            fig6(&opts);
            baseline(&opts);
            ablation_tolerance(&opts);
            ablation_xsbt(&opts);
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            std::process::exit(2);
        }
    }
}

fn parse_args(args: &[String]) -> Result<(String, ReproOptions), String> {
    let mut opts = ReproOptions::default();
    let mut cmd = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                opts.scale = Scale::parse(v).ok_or(format!("bad scale `{v}`"))?;
            }
            "--programs" => {
                let v = it.next().ok_or("--programs needs a value")?;
                opts.programs = Some(v.parse().map_err(|_| format!("bad count `{v}`"))?);
            }
            "--epochs" => {
                let v = it.next().ok_or("--epochs needs a value")?;
                opts.epochs = Some(v.parse().map_err(|_| format!("bad count `{v}`"))?);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--model" => {
                let v = it.next().ok_or("--model needs a path")?;
                opts.model_path = v.into();
            }
            "--retrain" => opts.retrain = true,
            other if cmd.is_none() && !other.starts_with('-') => {
                cmd = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok((cmd.ok_or("missing experiment name")?, opts))
}

fn corpus_stats(opts: &ReproOptions) -> CorpusStats {
    let (corpus, dataset, _) = build_data(opts);
    eprintln!(
        "[repro] corpus: {} raw programs, {} dataset records",
        corpus.len(),
        dataset.len()
    );
    corpus.stats()
}

// ---------------------------------------------------------------------------

fn table1a(opts: &ReproOptions) {
    let stats = corpus_stats(opts);
    println!(
        "\n== Table Ia — code lengths (paper: 2670 / 22361 / 14078 / 10575 on 49,684 files) =="
    );
    let rows = vec![
        vec!["<= 10".to_string(), stats.lengths.le_10.to_string()],
        vec!["11-50".to_string(), stats.lengths.from_11_to_50.to_string()],
        vec!["51-99".to_string(), stats.lengths.from_51_to_99.to_string()],
        vec![">= 100".to_string(), stats.lengths.ge_100.to_string()],
    ];
    print!("{}", table(&["# Line", "Amount"], &rows));
}

fn table1b(opts: &ReproOptions) {
    let stats = corpus_stats(opts);
    println!("\n== Table Ib — MPI Common Core functions, counted per file ==");
    println!("(paper: Finalize 35983 > Comm_rank 32312 > Comm_size 28742 > Init 25114 > Recv 10340 > Send 9841 > Reduce 8503 > Bcast 5296)");
    let rows: Vec<Vec<String>> = stats
        .common_core_rows()
        .into_iter()
        .map(|(f, n)| vec![f.to_string(), n.to_string()])
        .collect();
    print!("{}", table(&["Function", "Amount"], &rows));
}

fn fig3(opts: &ReproOptions) {
    let stats = corpus_stats(opts);
    println!("\n== Figure 3 — Init..Finalize span / program length ==");
    println!("(paper: most mass above 0.5; files with both Init & Finalize: 20,228)");
    let labels: Vec<String> = (0..10)
        .map(|i| format!("{:.1}-{:.1}", i as f64 / 10.0, (i + 1) as f64 / 10.0))
        .collect();
    print!(
        "{}",
        histogram(&stats.init_finalize_ratio_hist, &labels, 50)
    );
    println!(
        "files with Init & Finalize: {}  |  fraction of ratios > 0.5: {:.2}",
        stats.files_with_init_and_finalize,
        stats.fraction_ratio_above_half()
    );
}

fn fig5(opts: &ReproOptions) -> (MpiRical, Splits) {
    let (_corpus, dataset, splits) = build_data(opts);
    eprintln!(
        "[repro] dataset {} records; splits: train {} / val {} / test {}",
        dataset.len(),
        splits.train.len(),
        splits.val.len(),
        splits.test.len()
    );
    println!("\n== Figure 5 — training curves (paper: loss 1.65→1.5, val 1.58→1.5, acc 0.16→0.18 over 5 epochs) ==");
    let t0 = std::time::Instant::now();
    let (assistant, report) = train_or_load(opts, &splits, |e| {
        eprintln!(
            "[repro] epoch {}: train {:.4} | val {:.4} | seq-acc {:.3} | tok-acc {:.3}",
            e.epoch, e.train_loss, e.val_loss, e.val_seq_acc, e.val_tok_acc
        );
    });
    match report {
        Some(r) => {
            let rows: Vec<Vec<String>> = r
                .epochs
                .iter()
                .map(|e| {
                    vec![
                        e.epoch.to_string(),
                        format!("{:.4}", e.train_loss),
                        format!("{:.4}", e.val_loss),
                        format!("{:.3}", e.val_seq_acc),
                        format!("{:.3}", e.val_tok_acc),
                    ]
                })
                .collect();
            print!(
                "{}",
                table(
                    &["epoch", "train loss", "val loss", "seq acc", "tok acc"],
                    &rows
                )
            );
            println!("(trained in {:.1}s)", t0.elapsed().as_secs_f64());
        }
        None => println!("(loaded from cache; pass --retrain to regenerate the curves)"),
    }
    (assistant, splits)
}

fn table2(opts: &ReproOptions) {
    let (assistant, splits) = fig5(opts);
    println!("\n== Table II — performance on the corpus test set (paper column on the right) ==");
    let (report, _) = evaluate_dataset_with_tolerance(&assistant, &splits.test, 1);
    println!(
        "evaluated {} / skipped {} (label exceeds decoder window)",
        report.evaluated, report.skipped
    );
    print!("{}", render_table_two(&report.table));
    println!("paper: M-F1 0.87, M-P 0.85, M-R 0.89, MCC-F1 0.89, MCC-P 0.91, MCC-R 0.87, BLEU 0.93, Meteor 0.62, Rouge-l 0.95, ACC 0.57");
}

fn table3(opts: &ReproOptions) {
    let (assistant, _) = fig5(opts);
    println!(
        "\n== Table III — 11 numerical computations (paper total: F1 0.91, P 0.98, R 0.86) =="
    );
    let mut rows = Vec::new();
    let mut pooled: Vec<(
        Vec<mpirical_metrics::CallSite>,
        Vec<mpirical_metrics::CallSite>,
    )> = Vec::new();
    for p in benchmark_programs() {
        let v = validate_program(&p);
        assert!(v.ok(), "{} failed simulated-MPI validation: {v:?}", p.name);
        // Strip MPI from the program, predict, align.
        let prog = mpirical_cparse::parse_strict(p.source).unwrap();
        let std_text = mpirical_cparse::print_program(&prog);
        let std_prog = mpirical_cparse::parse_strict(&std_text).unwrap();
        let truth: Vec<mpirical_metrics::CallSite> = mpirical_corpus::extract_mpi_calls(&std_prog)
            .into_iter()
            .map(|c| mpirical_metrics::CallSite::new(c.name, c.line))
            .collect();
        let removal = mpirical_corpus::remove_mpi_calls(&std_prog);
        let input_text = mpirical_cparse::print_program(&removal.stripped);
        let pred_ids = assistant.predict_ids(&input_text);
        let pred = mpirical::calls_from_ids(&pred_ids, &assistant.model.vocab);
        let prf = Prf::from_counts(mpirical_metrics::align_counts(&truth, &pred, 1));
        rows.push(vec![
            p.name.to_string(),
            format!("{:.2}", prf.f1),
            format!("{:.2}", prf.precision),
            format!("{:.2}", prf.recall),
        ]);
        pooled.push((truth, pred));
    }
    let total = classification_report(
        pooled.iter().map(|(t, p)| (t.as_slice(), p.as_slice())),
        1,
        &mpirical_corpus::MPI_COMMON_CORE,
    );
    rows.push(vec![
        "Total".to_string(),
        format!("{:.2}", total.m.f1),
        format!("{:.2}", total.m.precision),
        format!("{:.2}", total.m.recall),
    ]);
    print!(
        "{}",
        table(&["Code", "M-F1", "M-Precision", "M-Recall"], &rows)
    );
}

fn fig6(opts: &ReproOptions) {
    let (assistant, splits) = fig5(opts);
    println!("\n== Figure 6 — worked TP/FP/FN example (±1 line tolerance) ==");
    let (_, preds) = evaluate_dataset_with_tolerance(&assistant, &splits.test, 1);
    let Some(p) = preds.iter().find(|p| !p.truth_calls.is_empty()) else {
        println!("(no evaluable test example at this scale)");
        return;
    };
    let a = p.alignment(1);
    println!("record {} (schema {})", p.record_id, p.schema);
    for (t, pr) in &a.matches {
        println!(
            "  TP: {} @ line {} (predicted line {})",
            t.name, t.line, pr.line
        );
    }
    for f in &a.unmatched_pred {
        println!(
            "  FP: {} @ line {} (no ground-truth partner)",
            f.name, f.line
        );
    }
    for f in &a.unmatched_truth {
        println!("  FN: {} @ line {} (missed)", f.name, f.line);
    }
    let c = a.counts();
    println!("  counts: TP {} / FP {} / FN {}", c.tp, c.fp, c.fn_);
}

fn baseline(opts: &ReproOptions) {
    println!("\n== Baseline — rule-based scaffolding insertion vs the learned model ==");
    let (_, _, splits) = build_data(opts);
    let t = mpirical::evaluate_baseline(&splits.test, 1);
    print!("{}", render_table_two(&t));
    println!("(compare with `repro table2`: the learned model's margin over these rows is the paper's contribution — rules cannot place Send/Recv/Reduce/Bcast.)");
}

fn ablation_tolerance(opts: &ReproOptions) {
    let (assistant, splits) = fig5(opts);
    println!("\n== Ablation — location tolerance sweep (paper fixes tolerance = 1) ==");
    // Decode once; re-align the same predictions under each tolerance.
    let (_, preds) = evaluate_dataset_with_tolerance(&assistant, &splits.test, 1);
    let mut rows = Vec::new();
    for tol in 0..=2u32 {
        let pairs: Vec<(&[mpirical_metrics::CallSite], &[mpirical_metrics::CallSite])> = preds
            .iter()
            .map(|p| (p.truth_calls.as_slice(), p.pred_calls.as_slice()))
            .collect();
        let report = classification_report(pairs, tol, &mpirical_corpus::MPI_COMMON_CORE);
        rows.push(vec![
            tol.to_string(),
            format!("{:.3}", report.m.f1),
            format!("{:.3}", report.m.precision),
            format!("{:.3}", report.m.recall),
        ]);
    }
    print!("{}", table(&["tolerance", "M-F1", "M-P", "M-R"], &rows));
}

fn ablation_xsbt(opts: &ReproOptions) {
    println!(
        "\n== Ablation — encoder input: code-only vs code+X-SBT (SPT-Code's design choice) =="
    );
    let (_, _, splits) = build_data(opts);
    let mut rows = Vec::new();
    for format in [InputFormat::CodeOnly, InputFormat::CodeXsbt] {
        let mut cfg: MpiRicalConfig = opts.assistant_config();
        cfg.input_format = format;
        let (assistant, _) = MpiRical::train(&splits.train, &splits.val, &cfg, |e| {
            eprintln!(
                "[repro] [{}] epoch {}: train {:.4}",
                format.name(),
                e.epoch,
                e.train_loss
            );
        });
        let (report, _) = evaluate_dataset_with_tolerance(&assistant, &splits.test, 1);
        rows.push(vec![
            format.name().to_string(),
            format!("{:.3}", report.table.m_f1),
            format!("{:.3}", report.table.bleu),
            format!("{:.3}", report.table.acc),
        ]);
    }
    print!("{}", table(&["input", "M-F1", "BLEU", "ACC"], &rows));
}
