//! Throwaway profiler for the decode hot path (not wired into CI).

use mpirical_model::decode::encode_source;
use mpirical_model::transformer::build_params;
use mpirical_model::{
    decode_step, decode_step_batch, decode_step_quant, BatchScratch, DecoderCache, DecoderWeights,
    ModelConfig, Precision, QuantDecoderWeights,
};
use mpirical_tensor::{
    batch_matmul, batch_matmul_packed, vecmat, vecmat_bt, vecmat_q, PackedMat, ParamStore,
    QuantMat, Tensor,
};
use std::time::Instant;

fn time(label: &str, iters: usize, mut f: impl FnMut()) {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let el = t0.elapsed();
    println!("{label:40} {:>10.2?} / iter", el / iters as u32);
}

fn main() {
    let cfg = ModelConfig {
        vocab_size: 2048,
        d_model: 256,
        n_heads: 4,
        d_ff: 512,
        n_enc_layers: 2,
        n_dec_layers: 2,
        max_enc_len: 64,
        max_dec_len: 80,
        dropout: 0.0,
    };
    let mut store = ParamStore::new();
    let params = build_params(&cfg, &mut store, 1);
    let src: Vec<usize> = (0..48).map(|i| 6 + (i % 200)).collect();
    let enc = encode_source(&store, &params, &cfg, &src);

    // kernels
    let w_out = Tensor::from_vec(
        &[256, 2048],
        (0..256 * 2048).map(|i| (i % 13) as f32 * 0.01).collect(),
    );
    let w_sq = Tensor::from_vec(
        &[256, 256],
        (0..256 * 256).map(|i| (i % 7) as f32 * 0.02).collect(),
    );
    let kmat = Tensor::from_vec(
        &[48, 64],
        (0..48 * 64).map(|i| (i % 11) as f32 * 0.03).collect(),
    );
    let v64 = vec![0.5f32; 256];
    let q16 = vec![0.25f32; 64];
    let mut out512 = vec![0.0f32; 2048];
    let mut out64 = vec![0.0f32; 256];
    let mut out128 = vec![0.0f32; 48];
    let x8 = vec![0.5f32; 8 * 256];
    let mut bout = vec![0.0f32; 8 * 2048];
    let mut bout64 = vec![0.0f32; 8 * 256];

    time("vecmat 256x2048", 5000, || {
        vecmat(&v64, &w_out, &mut out512)
    });
    time("8x vecmat 256x2048", 1000, || {
        for _ in 0..8 {
            vecmat(&v64, &w_out, &mut out512)
        }
    });
    time("batch_matmul 8x256x2048", 1000, || {
        batch_matmul(&x8, 8, &w_out, &mut bout)
    });
    let pw_out = PackedMat::pack(&w_out);
    time("batch_matmul_packed 8x256x2048", 1000, || {
        batch_matmul_packed(&x8, 8, &pw_out, &mut bout)
    });
    // Int8 kernels against their f32 counterparts (the 4× weight-traffic
    // reduction behind the decode_quant bench group).
    let qm_out = QuantMat::quantize(&w_out);
    time("vecmat_q 256x2048 (int8)", 5000, || {
        vecmat_q(&v64, &qm_out, &mut out512)
    });
    time("vecmat 256x256", 20000, || vecmat(&v64, &w_sq, &mut out64));
    time("batch_matmul 8x256x256", 4000, || {
        batch_matmul(&x8, 8, &w_sq, &mut bout64)
    });
    time("vecmat_bt q64 @ [48,64]", 20000, || {
        vecmat_bt(&q16, &kmat, &mut out128)
    });
    time("vecmat s48 @ [48,64] (ctx)", 20000, || {
        vecmat(&out128, &kmat, &mut out64[..64])
    });

    // full steps
    let mut cache = DecoderCache::new(&store, &params, &cfg, &enc);
    time("decode_step (single)", 2000, || {
        if cache.len() >= 70 {
            cache = DecoderCache::new(&store, &params, &cfg, &enc);
        }
        std::hint::black_box(decode_step(&store, &params, &cfg, &mut cache, 7));
    });

    let qw = QuantDecoderWeights::new(&store, &params);
    let mut qcache = DecoderCache::new(&store, &params, &cfg, &enc);
    time("decode_step_quant (single)", 2000, || {
        if qcache.len() >= 70 {
            qcache = DecoderCache::new(&store, &params, &cfg, &enc);
        }
        std::hint::black_box(decode_step_quant(
            &store,
            &params,
            &cfg,
            &qw,
            &mut qcache,
            7,
        ));
    });

    let mut caches: Vec<DecoderCache> = (0..8)
        .map(|_| DecoderCache::new(&store, &params, &cfg, &enc))
        .collect();
    let weights = DecoderWeights::for_precision(&store, &params, Precision::F32);
    let mut scratch = BatchScratch::new(&cfg, 8);
    let mut logits = vec![0.0f32; 8 * 2048];
    time("decode_step_batch (8 lanes)", 2000, || {
        if caches[0].len() >= 70 {
            caches = (0..8)
                .map(|_| DecoderCache::new(&store, &params, &cfg, &enc))
                .collect();
        }
        let mut lanes: Vec<&mut DecoderCache> = caches.iter_mut().collect();
        decode_step_batch(
            &store,
            &params,
            &cfg,
            &weights,
            &mut lanes,
            &[7; 8],
            &mut scratch,
            &mut logits,
        );
    });

    time("DecoderCache::new", 2000, || {
        std::hint::black_box(DecoderCache::new(&store, &params, &cfg, &enc));
    });

    // Paged vs contiguous: peak cache bytes per lane and beam-fork cost at
    // a 64-token output (the numbers behind the paged-KV ROADMAP item).
    // Measured at the assistant's serving window (`max_dec_len` 240, as in
    // the decode benches) — the contiguous layout reserves that whole
    // window per lane up front, the paged layout only what 64 tokens fill.
    let mut mcfg = cfg.clone();
    mcfg.max_dec_len = 240;
    let mut paged = DecoderCache::new(&store, &params, &mcfg, &enc);
    let mut contiguous = DecoderCache::new_contiguous(&store, &params, &mcfg, &enc);
    for step in 0..64usize {
        decode_step(&store, &params, &mcfg, &mut paged, 6 + step % 200);
        decode_step(&store, &params, &mcfg, &mut contiguous, 6 + step % 200);
    }
    let stats = paged.pool().expect("paged").stats();
    let contiguous_bytes = 2 // K and V
        * mcfg.n_dec_layers
        * mcfg.n_heads
        * mcfg.max_dec_len
        * mcfg.d_head()
        * std::mem::size_of::<f32>();
    println!(
        "peak cache bytes/lane @64tok          paged {:>8} vs contiguous {:>8}  ({:.2}x lower)",
        stats.peak_bytes(),
        contiguous_bytes,
        contiguous_bytes as f64 / stats.peak_bytes() as f64,
    );
    time("fork (clone) paged @64tok", 20000, || {
        std::hint::black_box(paged.clone());
    });
    time("fork (clone) contiguous @64tok", 20000, || {
        std::hint::black_box(contiguous.clone());
    });
}
