//! Criterion benches of the simulated MPI runtime and the C interpreter —
//! the §VI-C validation substrate. Collective latency scaling across world
//! sizes, p2p ping-pong, and interpreted-program throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mpirical_interp::{run_program, RunConfig};
use mpirical_sim::{ReduceOp, Source, Tag, World};

fn bench_p2p(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpisim_p2p");
    g.sample_size(10);
    for msg in [1usize, 64, 1024] {
        g.bench_function(format!("pingpong_{msg}_doubles"), |b| {
            b.iter(|| {
                World::run(2, |comm| {
                    let buf = vec![1.0f64; msg];
                    let mut rbuf = vec![0.0f64; msg];
                    if comm.rank() == 0 {
                        comm.send(&buf, 1, 0)?;
                        comm.recv(&mut rbuf, Source::Rank(1), Tag::Value(1))?;
                    } else {
                        comm.recv(&mut rbuf, Source::Rank(0), Tag::Value(0))?;
                        comm.send(&buf, 0, 1)?;
                    }
                    Ok(())
                })
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpisim_collectives");
    g.sample_size(10);
    for nranks in [2usize, 4, 8] {
        g.bench_function(format!("allreduce_{nranks}ranks"), |b| {
            b.iter(|| {
                World::run(nranks, |comm| {
                    let x = [comm.rank() as f64; 16];
                    let mut out = [0.0f64; 16];
                    comm.allreduce(&x, &mut out, ReduceOp::Sum)?;
                    Ok(black_box(out[0]))
                })
                .unwrap()
            })
        });
        g.bench_function(format!("barrier_{nranks}ranks"), |b| {
            b.iter(|| {
                World::run(nranks, |comm| {
                    for _ in 0..8 {
                        comm.barrier()?;
                    }
                    Ok(())
                })
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let pi_src = r#"#include <mpi.h>
int main(int argc, char **argv) {
    int rank, size, i;
    int n = 2000;
    double local = 0.0, pi, x, step;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    step = 1.0 / (double)n;
    for (i = rank; i < n; i += size) {
        x = (i + 0.5) * step;
        local += 4.0 / (1.0 + x * x);
    }
    local = local * step;
    MPI_Reduce(&local, &pi, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);
    if (rank == 0) { printf("%.6f\n", pi); }
    MPI_Finalize();
    return 0;
}"#;
    let prog = mpirical_cparse::parse_strict(pi_src).unwrap();
    let mut g = c.benchmark_group("cinterp");
    g.sample_size(10);
    for nranks in [1usize, 4] {
        g.bench_function(format!("pi_riemann_n2000_{nranks}ranks"), |b| {
            b.iter(|| run_program(black_box(&prog), &RunConfig::new(nranks)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_p2p, bench_collectives, bench_interpreter);
criterion_main!(benches);
