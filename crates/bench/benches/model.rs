//! Criterion benches of the model stack: matmul kernel, encoder forward,
//! one train step, KV-cached vs prefix-replay decoding, and end-to-end
//! suggestion latency — the numbers behind the paper's "SPT-Code is small
//! enough for IDE fusion" argument (§IV-A).
//!
//! The `decode` group tracks the incremental-inference win: cached greedy
//! and beam-4 generation at 32/128/232-token outputs against the replay
//! baseline (`min_len` forces fixed-length outputs on both engines so the
//! comparison is token-for-token).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use mpirical_model::{
    build_params, decode::encode_source, decode_encoded, decode_with, replay_decode_with,
    transformer::encode, transformer::ForwardMode, BatchDecoder, BatchRequest, DecodeOptions,
    Engine, EngineConfig, EngineModel, Example, ModelConfig, PollResult, Precision, SubmitOptions,
    TrainConfig, Vocab,
};
use mpirical_tensor::{matmul, Adam, ParamStore, Tape, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("tensor");
    for n in [32usize, 64, 128] {
        let a = Tensor::full(&[n, n], 0.5);
        let b = Tensor::full(&[n, n], -0.25);
        g.bench_function(format!("matmul_{n}x{n}"), |bch| {
            bch.iter(|| matmul(black_box(&a), black_box(&b)))
        });
    }
    g.finish();
}

fn small_model() -> (ModelConfig, ParamStore, mpirical_model::TransformerParams) {
    let cfg = ModelConfig {
        vocab_size: 512,
        max_enc_len: 256,
        max_dec_len: 232,
        ..Default::default()
    };
    let mut store = ParamStore::new();
    let params = build_params(&cfg, &mut store, 1);
    (cfg, store, params)
}

fn bench_model(c: &mut Criterion) {
    let (cfg, store, params) = small_model();
    let src: Vec<usize> = (0..128).map(|i| 6 + (i % 200)).collect();

    let mut g = c.benchmark_group("model");
    g.sample_size(10);
    g.bench_function("encoder_forward_128tok", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            encode(
                &mut tape,
                black_box(&store),
                &params,
                &cfg,
                black_box(&src),
                ForwardMode::inference(),
            )
        })
    });

    g.bench_function("train_step_batch4_64tok", |b| {
        let examples: Vec<Example> = (0..4)
            .map(|k| Example {
                src: (0..64).map(|i| 6 + ((i + k) % 100)).collect(),
                tgt: (0..48).map(|i| 6 + ((i * 3 + k) % 100)).collect(),
            })
            .collect();
        b.iter_batched(
            || (store.clone(), Adam::new(1e-4)),
            |(mut st, mut adam)| {
                let batch: Vec<&Example> = examples.iter().collect();
                mpirical_model::train::train_step(
                    &mut st, &params, &cfg, &mut adam, &batch, 1, 1.0, 7,
                )
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    // Quick-scale architecture with headroom for 232-token outputs.
    let cfg = ModelConfig {
        vocab_size: 512,
        max_enc_len: 256,
        max_dec_len: 240,
        ..Default::default()
    };
    let mut store = ParamStore::new();
    let params = build_params(&cfg, &mut store, 1);
    let src: Vec<usize> = (0..128).map(|i| 6 + (i % 200)).collect();

    let mut g = c.benchmark_group("decode");
    g.sample_size(10);

    for out_len in [32usize, 128, 232] {
        let opts = DecodeOptions {
            beam: 1,
            min_len: out_len,
            ..Default::default()
        };
        g.bench_function(format!("cached_greedy_{out_len}tok"), |b| {
            b.iter(|| {
                decode_with(
                    black_box(&store),
                    &params,
                    &cfg,
                    black_box(&src),
                    out_len + 1,
                    opts,
                )
            })
        });
        let beam_opts = DecodeOptions {
            beam: 4,
            min_len: out_len,
            ..Default::default()
        };
        g.bench_function(format!("cached_beam4_{out_len}tok"), |b| {
            b.iter(|| {
                decode_with(
                    black_box(&store),
                    &params,
                    &cfg,
                    black_box(&src),
                    out_len + 1,
                    beam_opts,
                )
            })
        });
    }

    // Prefix-replay baselines (the pre-cache engine). The 232-token replay
    // points are omitted: at O(T²·L) they dominate bench wall-clock without
    // adding information beyond the 128-token ratio.
    for out_len in [32usize, 128] {
        let opts = DecodeOptions {
            beam: 1,
            min_len: out_len,
            ..Default::default()
        };
        g.bench_function(format!("replay_greedy_{out_len}tok"), |b| {
            b.iter(|| {
                replay_decode_with(
                    black_box(&store),
                    &params,
                    &cfg,
                    black_box(&src),
                    out_len + 1,
                    opts,
                )
            })
        });
    }
    g.bench_function("replay_beam4_32tok", |b| {
        let opts = DecodeOptions {
            beam: 4,
            min_len: 32,
            ..Default::default()
        };
        b.iter(|| replay_decode_with(black_box(&store), &params, &cfg, black_box(&src), 33, opts))
    });
    g.finish();
}

/// Batched multi-request decoding vs N sequential cached-greedy decodes.
///
/// Measured at a **serving-scale** shape — d=256 with the paper's 4×d
/// feed-forward ratio and the assistant's actual vocabulary cap (4096,
/// `MpiRicalConfig::vocab_max_size`): ~12MB of decoder weights, well past
/// cache — because that is where the batching argument lives: a sequential
/// decode step must re-stream every weight matrix per request, while the
/// lockstep step streams them once for all 8 lanes via the register-blocked
/// packed kernels. At the CPU-demo shape (d=64) the whole model is
/// cache-resident and per-lane attention dominates, so batching only buys
/// ~1.3× — both numbers are recorded in CHANGES.md.
///
/// Both sides decode from precomputed encoder outputs (the encoder pass is
/// identical either way, so timing it would only dilute the scheduler
/// comparison) and force 64-token outputs through `min_len`, making the
/// token count — and, lane for lane, the logits — identical. The headline
/// number is aggregate throughput: `batch8_greedy_64tok` must beat
/// `sequential_8x_greedy_64tok` by ≥3×.
fn bench_batch_decode(c: &mut Criterion) {
    let cfg = ModelConfig {
        vocab_size: 4096,
        d_model: 256,
        n_heads: 4,
        d_ff: 1024,
        n_enc_layers: 2,
        n_dec_layers: 2,
        max_enc_len: 64,
        max_dec_len: 80,
        dropout: 0.0,
    };
    let mut store = ParamStore::new();
    let params = build_params(&cfg, &mut store, 1);
    // Eight distinct sources (different token walks, same 48-token length).
    let enc_outs: Vec<Tensor> = (0..8)
        .map(|r| {
            let src: Vec<usize> = (0..48).map(|i| 6 + ((i * (r + 3)) % 200)).collect();
            encode_source(&store, &params, &cfg, &src)
        })
        .collect();
    let opts = DecodeOptions {
        beam: 1,
        min_len: 64,
        ..Default::default()
    };

    let mut g = c.benchmark_group("decode_batch");
    g.sample_size(10);
    g.bench_function("sequential_8x_greedy_64tok", |b| {
        b.iter(|| {
            for e in &enc_outs {
                black_box(decode_encoded(
                    &store,
                    &params,
                    &cfg,
                    black_box(e),
                    65,
                    opts,
                ));
            }
        })
    });
    // The scheduler is long-lived in a service (weights pack once at
    // startup), so it is constructed outside the timed loop; per-request
    // work — cache builds, decoding, retirement — is all inside.
    let mut dec = BatchDecoder::new(&store, &params, &cfg, 8);
    g.bench_function("batch8_greedy_64tok", |b| {
        b.iter(|| {
            let reqs = enc_outs
                .iter()
                .map(|e| BatchRequest {
                    enc_out: e.clone(),
                    prompt: vec![mpirical_model::vocab::SOS],
                    max_len: 65,
                    opts,
                    submit: SubmitOptions::default(),
                })
                .collect();
            black_box(dec.decode_all(reqs))
        })
    });
    // Continuous batching under oversubscription: 16 requests through 8
    // lanes — retiring lanes refill from the queue mid-flight.
    g.bench_function("batch8_16reqs_greedy_64tok", |b| {
        b.iter(|| {
            let reqs = enc_outs
                .iter()
                .chain(enc_outs.iter())
                .map(|e| BatchRequest {
                    enc_out: e.clone(),
                    prompt: vec![mpirical_model::vocab::SOS],
                    max_len: 65,
                    opts,
                    submit: SubmitOptions::default(),
                })
                .collect();
            black_box(dec.decode_all(reqs))
        })
    });
    g.finish();
}

/// Batched beam search vs N sequential beam decodes — the capability the
/// paged KV cache unlocks (hypothesis forks are COW page shares, so beam
/// requests fit the lockstep lane model).
///
/// Setup **asserts** that `BatchDecoder` accepts `beam > 1` and returns
/// exactly the single-request beam outputs — CI runs this group as a smoke
/// check that batched beam works end to end with no sequential fallback —
/// then times 4 beam-4 requests decoded sequentially vs in one batch at the
/// serving-scale shape of `bench_batch_decode`.
fn bench_batch_beam(c: &mut Criterion) {
    let cfg = ModelConfig {
        vocab_size: 4096,
        d_model: 256,
        n_heads: 4,
        d_ff: 1024,
        n_enc_layers: 2,
        n_dec_layers: 2,
        max_enc_len: 64,
        max_dec_len: 80,
        dropout: 0.0,
    };
    let mut store = ParamStore::new();
    let params = build_params(&cfg, &mut store, 1);
    let enc_outs: Vec<Tensor> = (0..4)
        .map(|r| {
            let src: Vec<usize> = (0..48).map(|i| 6 + ((i * (r + 3)) % 200)).collect();
            encode_source(&store, &params, &cfg, &src)
        })
        .collect();
    let opts = DecodeOptions {
        beam: 4,
        min_len: 32,
        ..Default::default()
    };
    let reqs = |encs: &[Tensor]| -> Vec<BatchRequest> {
        encs.iter()
            .map(|e| BatchRequest {
                enc_out: e.clone(),
                prompt: vec![mpirical_model::vocab::SOS],
                max_len: 33,
                opts,
                submit: SubmitOptions::default(),
            })
            .collect()
    };

    // No-fallback smoke: batched beam must run and match the
    // single-request beam path exactly.
    let singles: Vec<Vec<usize>> = enc_outs
        .iter()
        .map(|e| decode_encoded(&store, &params, &cfg, e, 33, opts))
        .collect();
    let mut dec = BatchDecoder::new(&store, &params, &cfg, 16);
    assert_eq!(
        dec.decode_all(reqs(&enc_outs)),
        singles,
        "batched beam must equal sequential beam (no fallback)"
    );

    let mut g = c.benchmark_group("decode_batch_beam");
    g.sample_size(10);
    g.bench_function("sequential_4x_beam4_32tok", |b| {
        b.iter(|| {
            for e in &enc_outs {
                black_box(decode_encoded(
                    &store,
                    &params,
                    &cfg,
                    black_box(e),
                    33,
                    opts,
                ));
            }
        })
    });
    g.bench_function("batch4_beam4_32tok", |b| {
        b.iter(|| black_box(dec.decode_all(reqs(&enc_outs))))
    });
    g.finish();
}

/// Int8 quantized decode vs the f32 cached-greedy path — the ROADMAP's
/// quantized-inference item, measured where it matters: the **d=256
/// serving shape** (4×d feed-forward, 4096 vocab, ~12MB of f32 decoder
/// weights), where every decoded token streams the full weight set and
/// the step is memory-bound. The quantized panels are ~3MB, so the int8
/// step reads a quarter of the bytes; `quant_greedy_64tok` must beat
/// `f32_greedy_64tok` median tokens/s (the acceptance line; locally
/// ~1.6–1.7×).
///
/// Setup asserts the quantized path emits logits that *differ* from f32
/// (bitwise) while agreeing on the greedy-token trajectory's shape — a
/// silent regression to the f32 kernels would produce identical logits
/// and fail the job before any timing runs (the CI smoke). Weights are
/// quantized once outside the timed loop, exactly as an artifact or
/// service holds them.
fn bench_decode_quant(c: &mut Criterion) {
    let cfg = ModelConfig {
        vocab_size: 4096,
        d_model: 256,
        n_heads: 4,
        d_ff: 1024,
        n_enc_layers: 2,
        n_dec_layers: 2,
        max_enc_len: 64,
        max_dec_len: 80,
        dropout: 0.0,
    };
    let mut store = ParamStore::new();
    let params = build_params(&cfg, &mut store, 1);
    let src: Vec<usize> = (0..48).map(|i| 6 + ((i * 3) % 200)).collect();
    let enc = encode_source(&store, &params, &cfg, &src);
    let qw = mpirical_model::QuantDecoderWeights::new(&store, &params);
    let opts = DecodeOptions {
        beam: 1,
        min_len: 64,
        ..Default::default()
    };

    // No-silent-fallback smoke: the quant step must actually run the int8
    // kernels (logits differ from f32) and still decode a full output.
    {
        use mpirical_model::{decode_step, decode_step_quant, DecoderCache};
        let mut fc = DecoderCache::new(&store, &params, &cfg, &enc);
        let mut qc = DecoderCache::new(&store, &params, &cfg, &enc);
        let lf = decode_step(&store, &params, &cfg, &mut fc, 1);
        let lq = decode_step_quant(&store, &params, &cfg, &qw, &mut qc, 1);
        assert_ne!(lf, lq, "int8 path must not silently run the f32 kernels");
        let out = mpirical_model::decode_encoded_prompted_quant(
            &store,
            &params,
            &cfg,
            &qw,
            &enc,
            &[mpirical_model::vocab::SOS],
            65,
            opts,
        );
        assert_eq!(out.len(), 64, "min_len forces the full 64-token output");
    }

    let mut g = c.benchmark_group("decode_quant");
    g.sample_size(10);
    g.bench_function("f32_greedy_64tok", |b| {
        b.iter(|| decode_encoded(black_box(&store), &params, &cfg, black_box(&enc), 65, opts))
    });
    g.bench_function("quant_greedy_64tok", |b| {
        b.iter(|| {
            mpirical_model::decode_encoded_prompted_quant(
                black_box(&store),
                &params,
                &cfg,
                &qw,
                black_box(&enc),
                &[mpirical_model::vocab::SOS],
                65,
                opts,
            )
        })
    });
    // The quantized lockstep scheduler, recorded for honesty rather than
    // as a win: at batch 8 the packed f32 kernels already amortize the
    // weight stream across lanes (the step is compute-bound, not
    // memory-bound), and int8's widening multiply-adds cost more per MAC
    // than f32 FMAs — so batched f32 stays faster (~109ms vs ~222ms
    // here). Quantization is the *low-concurrency* lever: it wins exactly
    // where batching can't help (a single interactive request), and the
    // artifact is ~4× smaller either way.
    let enc_outs: Vec<Tensor> = (0..8)
        .map(|r| {
            let src: Vec<usize> = (0..48).map(|i| 6 + ((i * (r + 3)) % 200)).collect();
            encode_source(&store, &params, &cfg, &src)
        })
        .collect();
    let mut dec =
        BatchDecoder::with_precision(&store, &params, &cfg, 8, mpirical_model::Precision::Int8);
    let qopts = DecodeOptions {
        beam: 1,
        min_len: 64,
        precision: mpirical_model::Precision::Int8,
    };
    g.bench_function("quant_batch8_greedy_64tok", |b| {
        b.iter(|| {
            let reqs = enc_outs
                .iter()
                .map(|e| BatchRequest {
                    enc_out: e.clone(),
                    prompt: vec![mpirical_model::vocab::SOS],
                    max_len: 65,
                    opts: qopts,
                    submit: SubmitOptions::default(),
                })
                .collect();
            black_box(dec.decode_all(reqs))
        })
    });
    g.finish();
}

/// Interactive queue-wait under a saturating bulk load — the serving API
/// v2 acceptance number, at the d=256 serving shape of
/// `bench_batch_decode`.
///
/// Setup floods all 8 lanes with `Bulk` 64-token jobs, then submits an
/// `Interactive` request capped at 8 generated tokens (the keystroke
/// pattern: a few suggestions, fast) and **asserts** the preemption
/// contract before any timing runs — the CI smoke: the interactive
/// request is decoding one step after submission (a bulk lane yielded),
/// finishes with zero recorded queue-wait steps, its tokens equal the
/// single-request reference, and the preempted bulk job's final tokens
/// are untouched. The FIFO baseline (the same late request submitted
/// `Bulk`, i.e. the v1 admission policy) is asserted to wait many steps
/// for a lane.
///
/// The timed pair then measures end-to-end interactive completion latency
/// under the bulk flood: `priority_*` submits the late request
/// interactive (preempts, ~10 lockstep steps), `fifo_*` submits it bulk
/// (drains behind the 64-token jobs, ~70 steps) — the wall-clock gap *is*
/// the queue wait the priority scheduler removes. Leftover bulk work is
/// cancelled between iterations (also exercising cancel's page return on
/// the hot path).
fn bench_decode_priority(c: &mut Criterion) {
    let cfg = ModelConfig {
        vocab_size: 4096,
        d_model: 256,
        n_heads: 4,
        d_ff: 1024,
        n_enc_layers: 2,
        n_dec_layers: 2,
        max_enc_len: 64,
        max_dec_len: 80,
        dropout: 0.0,
    };
    let mut store = ParamStore::new();
    let params = build_params(&cfg, &mut store, 1);
    let enc_outs: Vec<Tensor> = (0..9)
        .map(|r| {
            let src: Vec<usize> = (0..48).map(|i| 6 + ((i * (r + 3)) % 200)).collect();
            encode_source(&store, &params, &cfg, &src)
        })
        .collect();
    let bulk_opts = DecodeOptions {
        beam: 1,
        min_len: 64,
        ..Default::default()
    };
    let fast_opts = DecodeOptions {
        beam: 1,
        min_len: 8,
        ..Default::default()
    };
    let bulk_req = |e: &Tensor| BatchRequest {
        enc_out: e.clone(),
        prompt: vec![mpirical_model::vocab::SOS],
        max_len: 65,
        opts: bulk_opts,
        submit: SubmitOptions::bulk(),
    };
    let fast_req = |priority: bool| BatchRequest {
        enc_out: enc_outs[8].clone(),
        prompt: vec![mpirical_model::vocab::SOS],
        max_len: 65,
        opts: fast_opts,
        submit: if priority {
            SubmitOptions::interactive().with_max_new_tokens(8)
        } else {
            SubmitOptions::bulk().with_max_new_tokens(8)
        },
    };

    // Acceptance smoke: preemption within 1 step, bitwise outputs, honest
    // FIFO baseline.
    {
        let fast_ref = decode_encoded(&store, &params, &cfg, &enc_outs[8], 9, fast_opts);
        let bulk_ref = decode_encoded(&store, &params, &cfg, &enc_outs[0], 65, bulk_opts);
        let mut dec = BatchDecoder::new(&store, &params, &cfg, 8);
        let bulk_ids: Vec<_> = enc_outs[..8]
            .iter()
            .map(|e| dec.submit(bulk_req(e)))
            .collect();
        for _ in 0..2 {
            dec.step();
        }
        assert_eq!(dec.active(), 8, "bulk saturates every lane");
        let fast = dec.submit(fast_req(true));
        dec.step();
        let PollResult::Decoding { tokens_so_far } = dec.poll(fast) else {
            panic!("interactive request must be decoding one step after submit");
        };
        assert_eq!(tokens_so_far.len(), 1, "began decoding within 1 step");
        assert_eq!(dec.preemptions(), 1, "one bulk lane yielded");
        dec.run();
        let PollResult::Done { ids, telemetry, .. } = dec.poll(fast) else {
            panic!("interactive finished");
        };
        assert_eq!(ids, fast_ref, "preempting path stays bitwise-identical");
        assert_eq!(telemetry.queue_wait_steps, 0, "zero queue-wait steps");
        assert_eq!(
            dec.poll(bulk_ids[0]).into_output().expect("bulk finished"),
            bulk_ref,
            "preempted-and-resumed bulk tokens unchanged"
        );

        // FIFO baseline: the same request in the bulk class waits for a
        // free lane behind the 64-token jobs.
        let mut fifo = BatchDecoder::new(&store, &params, &cfg, 8);
        for e in &enc_outs[..8] {
            fifo.submit(bulk_req(e));
        }
        for _ in 0..2 {
            fifo.step();
        }
        let slow = fifo.submit(fast_req(false));
        let mut waited = 0u64;
        while matches!(fifo.poll(slow), PollResult::Queued { .. }) {
            fifo.step();
            waited += 1;
        }
        assert!(
            waited > 10,
            "FIFO baseline must wait many steps for a lane (waited {waited})"
        );
    }

    let mut g = c.benchmark_group("decode_priority");
    g.sample_size(10);
    // Long-lived schedulers (weights pack once, as in a service); each
    // iteration floods the lanes, completes the late request, and cancels
    // the leftover bulk work so the next iteration starts clean.
    let run_iteration = |dec: &mut BatchDecoder, priority: bool| {
        let bulk_ids: Vec<_> = enc_outs[..8]
            .iter()
            .map(|e| dec.submit(bulk_req(e)))
            .collect();
        for _ in 0..2 {
            dec.step();
        }
        let fast = dec.submit(fast_req(priority));
        loop {
            dec.step();
            if let PollResult::Done { ids, .. } = dec.poll(fast) {
                black_box(ids);
                break;
            }
        }
        for id in bulk_ids {
            dec.cancel(id);
            black_box(dec.poll(id)); // drain Done/Cancelled markers
        }
    };
    let mut dec = BatchDecoder::new(&store, &params, &cfg, 8);
    g.bench_function("priority_interactive_8tok_under_bulk8", |b| {
        b.iter(|| run_iteration(&mut dec, true))
    });
    let mut fifo = BatchDecoder::new(&store, &params, &cfg, 8);
    g.bench_function("fifo_interactive_8tok_under_bulk8", |b| {
        b.iter(|| run_iteration(&mut fifo, false))
    });
    g.finish();
}

/// Beam-fork cost: cloning a 64-token cache. The paged clone bumps page
/// refcounts (COW); the contiguous reference deep-copies every K/V row —
/// this is the per-expansion cost beam search pays `beam - 1` times per
/// step.
fn bench_cache_fork(c: &mut Criterion) {
    let cfg = ModelConfig {
        vocab_size: 512,
        max_enc_len: 256,
        max_dec_len: 240,
        ..Default::default()
    };
    let mut store = ParamStore::new();
    let params = build_params(&cfg, &mut store, 1);
    let src: Vec<usize> = (0..128).map(|i| 6 + (i % 200)).collect();
    let enc = encode_source(&store, &params, &cfg, &src);
    let mut paged = mpirical_model::DecoderCache::new(&store, &params, &cfg, &enc);
    let mut contiguous = mpirical_model::DecoderCache::new_contiguous(&store, &params, &cfg, &enc);
    for step in 0..64usize {
        mpirical_model::decode_step(&store, &params, &cfg, &mut paged, 6 + step % 200);
        mpirical_model::decode_step(&store, &params, &cfg, &mut contiguous, 6 + step % 200);
    }

    let mut g = c.benchmark_group("paged");
    g.bench_function("fork_paged_64tok", |b| b.iter(|| black_box(paged.clone())));
    g.bench_function("fork_contiguous_64tok", |b| {
        b.iter(|| black_box(contiguous.clone()))
    });
    g.finish();
}

fn bench_suggestion_latency(c: &mut Criterion) {
    // End-to-end: raw source → suggestions, via an untrained (but real-size)
    // assistant — latency is architecture-, not weight-, dependent.
    let tokens: Vec<Vec<String>> = vec![[
        "int",
        "main",
        "(",
        ")",
        "{",
        "}",
        ";",
        "rank",
        "size",
        "MPI_Init",
        "MPI_Finalize",
        "MPI_Comm_rank",
        "=",
        "0",
        "1",
        "&",
        ",",
        "printf",
        "return",
        "<nl>",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()];
    let vocab = Vocab::build(tokens.iter(), 1, 4096);
    let cfg = ModelConfig {
        max_enc_len: 256,
        max_dec_len: 64, // cap generation for a stable latency number
        ..Default::default()
    };
    let model = mpirical_model::Seq2SeqModel::new(cfg, vocab, 3);
    let assistant = mpirical::MpiRical::from_parts(
        model,
        mpirical::InputFormat::CodeXsbt,
        Default::default(),
        None,
    );
    let src = "int main(int argc, char **argv) {\n    int rank, size;\n    double local = 0.0;\n    for (int i = 0; i < 100; i++) { local += i; }\n    printf(\"%f\\n\", local);\n    return 0;\n}\n";

    let mut g = c.benchmark_group("assistant");
    g.sample_size(10);
    g.bench_function("suggest_e2e", |b| {
        b.iter(|| assistant.suggest(black_box(src)))
    });
    g.bench_function("encode_source", |b| {
        b.iter(|| assistant.encode_source(black_box(src)))
    });
    g.finish();

    let _ = TrainConfig::default(); // keep the import exercised at all scales
}

/// Multi-worker engine scaling: one 16-request interactive burst decoded
/// by 1, 2, and 4 `BatchDecoder` workers behind the shared admission
/// front-end, at the serving-scale shape of `bench_batch_decode` (d=256).
///
/// Setup **asserts** that the 2- and 4-worker engines return exactly the
/// 1-worker outputs — CI runs this group as a smoke check that sharded
/// decoding stays bitwise identical — then times aggregate throughput per
/// worker count. A request decodes entirely within one worker, so the
/// scaling win comes from whole decoders running in parallel; on a ≥4-core
/// host expect ≥1.7× at 4 workers (measured numbers live in CHANGES.md).
///
/// The `prefix_shared` variant decodes the IDE-retrigger shape: the same
/// 33-token prompt with one edited token per request. Setup asserts (on a
/// sequenced 2-worker engine) that the radix index reports the repeats as
/// partial hits and prefills strictly fewer rows than the exact-match
/// baseline, which prefills every distinct prompt in full.
fn bench_engine_scaling(c: &mut Criterion) {
    let cfg = ModelConfig {
        vocab_size: 4096,
        d_model: 256,
        n_heads: 4,
        d_ff: 1024,
        n_enc_layers: 2,
        n_dec_layers: 2,
        max_enc_len: 64,
        max_dec_len: 80,
        dropout: 0.0,
    };
    let mut store = ParamStore::new();
    let params = build_params(&cfg, &mut store, 1);
    let enc_outs: Vec<Tensor> = (0..8)
        .map(|r| {
            let src: Vec<usize> = (0..48).map(|i| 6 + ((i * (r + 3)) % 200)).collect();
            encode_source(&store, &params, &cfg, &src)
        })
        .collect();
    let opts = DecodeOptions {
        beam: 1,
        min_len: 64,
        ..Default::default()
    };
    let burst = || -> Vec<BatchRequest> {
        enc_outs
            .iter()
            .chain(enc_outs.iter())
            .map(|e| BatchRequest {
                enc_out: e.clone(),
                prompt: vec![mpirical_model::vocab::SOS],
                max_len: 65,
                opts,
                submit: SubmitOptions::default(),
            })
            .collect()
    };

    // Weights pack once; every worker count shares the same bundle.
    let model = std::sync::Arc::new(EngineModel::new(
        store.clone(),
        params.clone(),
        cfg.clone(),
        Precision::F32,
    ));
    let engines: Vec<(usize, Engine)> = [1usize, 2, 4]
        .iter()
        .map(|&w| {
            let mut ecfg = EngineConfig::with_workers(w);
            ecfg.max_batch = 8;
            (w, Engine::new(model.clone(), ecfg))
        })
        .collect();
    let reference = engines[0].1.decode_all(burst());
    for (w, e) in &engines[1..] {
        assert_eq!(
            e.decode_all(burst()),
            reference,
            "{w}-worker engine must match the 1-worker outputs bitwise"
        );
    }

    // Near-identical burst: one base prompt, one edited token per repeat
    // (the edit lands in the prompt's second 16-row page, so the first
    // page still radix-shares).
    let base_prompt: Vec<usize> = std::iter::once(mpirical_model::vocab::SOS)
        .chain((0..32).map(|i| 6 + (i * 11) % 200))
        .collect();
    let shared_burst = || -> Vec<BatchRequest> {
        (0..16)
            .map(|r| {
                let mut prompt = base_prompt.clone();
                if r > 0 {
                    prompt[20] = 6 + (210 + r) % 300;
                }
                BatchRequest {
                    enc_out: enc_outs[0].clone(),
                    prompt,
                    max_len: 65,
                    opts,
                    submit: SubmitOptions::default(),
                }
            })
            .collect()
    };
    // Sequenced, so every lookup happens after the previous member's
    // prefill was retained: the radix path must beat the exact-match
    // baseline (all 16 prompts are distinct, so exact matching would
    // prefill every one in full).
    {
        let seq = Engine::new(model.clone(), {
            let mut ecfg = EngineConfig::with_workers(2);
            ecfg.max_batch = 8;
            ecfg
        });
        let reqs = shared_burst();
        let exact_match_rows = (base_prompt.len() as u64 - 1) * reqs.len() as u64;
        for req in reqs {
            let ticket = seq.submit(req);
            seq.drain();
            assert!(
                matches!(seq.poll(ticket), mpirical_model::PollResult::Done { .. }),
                "sequenced prefix-shared request did not finish"
            );
        }
        let s = seq.prefix_stats();
        assert_eq!(s.partial_hits, 15, "every repeat shares the unedited page");
        assert!(
            s.prefilled_rows < exact_match_rows,
            "radix sharing must prefill fewer rows than exact-match \
             ({} vs {exact_match_rows})",
            s.prefilled_rows,
        );
        seq.shutdown();
    }
    let shared_reference = engines[0].1.decode_all(shared_burst());
    for (w, e) in &engines[1..] {
        assert_eq!(
            e.decode_all(shared_burst()),
            shared_reference,
            "{w}-worker engine must match the 1-worker prefix-shared outputs bitwise"
        );
    }

    let mut g = c.benchmark_group("engine_scaling");
    g.sample_size(10);
    for (w, e) in &engines {
        g.bench_function(format!("engine{w}w_16reqs_greedy_64tok"), |b| {
            b.iter(|| black_box(e.decode_all(burst())))
        });
        g.bench_function(format!("engine{w}w_16reqs_prefix_shared_32tok"), |b| {
            b.iter(|| black_box(e.decode_all(shared_burst())))
        });
    }
    g.finish();
    for (_, e) in engines {
        e.shutdown();
    }
}

criterion_group!(
    benches,
    bench_matmul,
    bench_model,
    bench_decode,
    bench_batch_decode,
    bench_batch_beam,
    bench_decode_quant,
    bench_decode_priority,
    bench_cache_fork,
    bench_suggestion_latency,
    bench_engine_scaling
);
criterion_main!(benches);
