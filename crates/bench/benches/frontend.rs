//! Criterion micro-benches of the code front-end: parse, standardize,
//! X-SBT linearization, tokenization, MPI removal — the per-keystroke cost
//! budget of the paper's IDE-assistant deployment.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mpirical::tokenize_code;
use mpirical_corpus::{generate_program, remove_mpi_calls};
use mpirical_cparse::{lex, parse_strict, parse_tolerant, print_program};
use mpirical_xsbt::{sbt, xsbt};

fn sample_source() -> String {
    // A representative mid-size corpus program (~50 lines).
    let (_, src) = generate_program(0xBEEF, 17);
    src
}

fn bench_frontend(c: &mut Criterion) {
    let src = sample_source();
    let bytes = src.len() as u64;
    let prog = parse_strict(&src).unwrap();

    let mut g = c.benchmark_group("frontend");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("lex", |b| b.iter(|| lex(black_box(&src))));
    g.bench_function("parse_strict", |b| {
        b.iter(|| parse_strict(black_box(&src)).unwrap())
    });
    g.bench_function("parse_tolerant", |b| {
        b.iter(|| parse_tolerant(black_box(&src)))
    });
    g.bench_function("print_program", |b| {
        b.iter(|| print_program(black_box(&prog)))
    });
    g.bench_function("xsbt", |b| b.iter(|| xsbt(black_box(&prog))));
    g.bench_function("sbt", |b| b.iter(|| sbt(black_box(&prog))));
    g.bench_function("tokenize_code", |b| {
        b.iter(|| tokenize_code(black_box(&src)))
    });
    g.bench_function("remove_mpi_calls", |b| {
        b.iter(|| remove_mpi_calls(black_box(&prog)))
    });
    g.finish();
}

fn bench_corpus_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("corpus");
    g.bench_function("generate_program", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            generate_program(black_box(42), black_box(i))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_frontend, bench_corpus_generation);
criterion_main!(benches);
