//! # mpirical-tensor
//!
//! A small, auditable CPU tensor library purpose-built for the MPI-RICAL
//! reproduction's transformer (the paper fine-tunes SPT-Code with PyTorch on
//! a V100; offline we train from scratch on CPU, so the substrate is ours to
//! build).
//!
//! Contents:
//!
//! * [`Tensor`] — dense row-major `f32` tensors with the usual elementwise,
//!   reduction and shaping operations;
//! * [`matmul()`] — cache-blocked i-k-j matrix multiply, parallelized across
//!   output-row slices with crossbeam scoped threads (disjoint output, no
//!   locks — the data-parallel structure the HPC guides prescribe); the
//!   `A·Bᵀ` / `Aᵀ·B` variants attention and backward need use the same
//!   row-partition scheme, and the single-row [`vecmat`] / [`vecmat_bt`]
//!   kernels serve KV-cached incremental decoding without allocating, and
//!   the packed-rows [`batch_matmul`] / [`batch_linear`] kernels fuse N
//!   concurrent requests' projections into one weight pass (each output row
//!   bitwise-equal to its `vecmat`, so batching never changes logits);
//! * [`QuantMat`] — symmetric per-output-channel **int8** weight
//!   quantization with packed panels, plus the [`vecmat_q`] /
//!   [`batch_matmul_q`] W8A8 kernels (exact `i32` accumulation, one
//!   dequantize per output) that shrink weight traffic 4× on the
//!   memory-bound decode step;
//! * [`Tape`] / [`Var`] — reverse-mode autograd over a per-step tape, with
//!   every op a transformer needs (matmul, softmax, layernorm, GELU,
//!   embedding gather, fused cross-entropy, dropout, column slice/concat);
//! * [`ParamStore`] / [`Adam`] — named parameter storage with AdamW,
//!   gradient clipping and the warmup + inverse-sqrt LR schedule.
//!
//! Every differentiable op is covered by a central-difference gradient check
//! in `autograd::tests`.
//!
//! ```
//! use mpirical_tensor::{Tape, Tensor, ParamStore, Adam};
//! use rand::SeedableRng;
//!
//! let mut store = ParamStore::new();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let w = store.add("w", mpirical_tensor::init::xavier_uniform(&[4, 2], &mut rng));
//!
//! let mut tape = Tape::new();
//! let x = tape.constant(Tensor::ones(&[3, 4]));
//! let wv = tape.param(&store, w);
//! let y = tape.matmul(x, wv);
//! let loss = tape.mean_all(y);
//! let grads = tape.backward(loss);
//! Adam::new(1e-2).step(&mut store, &grads);
//! assert!(grads.get(w).is_some());
//! ```

pub mod autograd;
pub mod init;
pub mod matmul;
pub mod optim;
pub mod quant;
pub mod tensor;

pub use autograd::{Grads, Tape, Var};
pub use matmul::{
    batch_linear, batch_linear_packed, batch_matmul, batch_matmul_packed, dot_rows, matmul,
    matmul_at, matmul_bt, vecmat, vecmat_acc, vecmat_bt, PackedMat,
};
pub use optim::{Adam, ParamId, ParamStore};
pub use quant::{batch_linear_q, batch_matmul_q, quantize_row, vecmat_q, vecmat_q_pre, QuantMat};
pub use tensor::Tensor;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
        (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
            proptest::collection::vec(-3.0f32..3.0, r * c)
                .prop_map(move |data| Tensor::from_vec(&[r, c], data))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// (A B)ᵀ = Bᵀ Aᵀ.
        #[test]
        fn matmul_transpose_identity(a in arb_matrix(8), b in arb_matrix(8)) {
            let k = a.shape[1];
            let b = Tensor::from_vec(&[k, b.shape[1]], {
                let need = k * b.shape[1];
                b.data.iter().cycle().take(need).copied().collect()
            });
            let ab_t = matmul(&a, &b).transpose2();
            let bt_at = matmul(&b.transpose2(), &a.transpose2());
            prop_assert_eq!(ab_t.shape, bt_at.shape);
            for (x, y) in ab_t.data.iter().zip(&bt_at.data) {
                prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
            }
        }

        /// Softmax output is a probability distribution per row.
        #[test]
        fn softmax_rows_are_distributions(t in arb_matrix(10)) {
            let s = t.softmax_lastdim();
            let d = s.last_dim();
            for row in s.data.chunks(d) {
                let sum: f32 = row.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
                prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
            }
        }

        /// add is commutative, mul distributes over scale.
        #[test]
        fn elementwise_algebra(t in arb_matrix(6), s in -2.0f32..2.0) {
            let u = t.map(|x| x * 0.5 - 1.0);
            prop_assert_eq!(t.add(&u), u.add(&t));
            let left = t.mul(&u).scale(s);
            let right = t.scale(s).mul(&u);
            for (x, y) in left.data.iter().zip(&right.data) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        /// Backward of sum-of-elements through matmul equals the analytic
        /// outer-product form.
        #[test]
        fn matmul_grad_analytic(m in 1usize..5, k in 1usize..5, n in 1usize..5) {
            let a = Tensor::full(&[m, k], 0.5);
            let b = Tensor::full(&[k, n], -0.25);
            let mut store = ParamStore::new();
            let pa = store.add("a", a);
            let pb = store.add("b", b);
            let mut tape = Tape::new();
            let va = tape.param(&store, pa);
            let vb = tape.param(&store, pb);
            let c = tape.matmul(va, vb);
            // loss = sum(C) → dA = 1 @ Bᵀ, dB = Aᵀ @ 1
            let loss = tape.scale(c, 1.0);
            let grads = tape.backward(loss);
            let ga = grads.get(pa).unwrap();
            // dA[i,k] = Σ_j B[k,j] = n * (−0.25)
            for &g in &ga.data {
                prop_assert!((g - (n as f32 * -0.25)).abs() < 1e-4);
            }
            let gb = grads.get(pb).unwrap();
            for &g in &gb.data {
                prop_assert!((g - (m as f32 * 0.5)).abs() < 1e-4);
            }
        }
    }
}
