//! Reverse-mode autograd on a per-step tape.
//!
//! A [`Tape`] records the forward computation as a flat list of nodes; each
//! non-leaf node owns a backward closure that maps the node's output gradient
//! to its parents' gradients (capturing whatever forward values it needs by
//! clone). [`Tape::backward`] walks the node list in reverse, accumulating
//! gradients — topological order is free because node ids are creation-
//! ordered.
//!
//! Tapes are single-threaded by design: data-parallel training builds one
//! tape per worker thread over its batch shard and merges parameter
//! gradients afterwards (see [`Grads::merge`]). Parallelism *inside* a tape
//! comes from the threaded matmul kernel.

use crate::matmul::{matmul, matmul_at, matmul_bt};
use crate::optim::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

type BackFn = Box<dyn Fn(&Tensor) -> Vec<Tensor>>;

struct Node {
    value: Tensor,
    parents: Vec<usize>,
    backward: Option<BackFn>,
    param: Option<ParamId>,
}

/// Gradients produced by [`Tape::backward`], indexed by [`ParamId`].
#[derive(Debug, Default, Clone)]
pub struct Grads {
    pub by_param: Vec<Option<Tensor>>,
}

impl Grads {
    /// Gradient for a parameter, if it participated in the graph.
    pub fn get(&self, id: ParamId) -> Option<&Tensor> {
        self.by_param.get(id.0).and_then(|g| g.as_ref())
    }

    /// Sum another gradient set into this one (data-parallel merge).
    pub fn merge(&mut self, other: &Grads) {
        if self.by_param.len() < other.by_param.len() {
            self.by_param.resize(other.by_param.len(), None);
        }
        for (slot, g) in self.by_param.iter_mut().zip(&other.by_param) {
            match (slot.as_mut(), g) {
                (Some(a), Some(b)) => a.add_assign(b),
                (None, Some(b)) => *slot = Some(b.clone()),
                _ => {}
            }
        }
    }

    /// Scale every gradient (e.g. 1/num_shards averaging).
    pub fn scale(&mut self, s: f32) {
        for g in self.by_param.iter_mut().flatten() {
            g.scale_assign(s);
        }
    }

    /// Global L2 norm across all gradients.
    pub fn global_norm(&self) -> f32 {
        self.by_param
            .iter()
            .flatten()
            .map(|g| g.norm_sq())
            .sum::<f32>()
            .sqrt()
    }

    /// Clip to a maximum global norm; returns the pre-clip norm.
    pub fn clip_global_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
        norm
    }
}

/// The autograd tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    pub fn new() -> Tape {
        Tape {
            nodes: Vec::with_capacity(256),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Tensor, parents: Vec<usize>, backward: Option<BackFn>) -> Var {
        self.nodes.push(Node {
            value,
            parents,
            backward,
            param: None,
        });
        Var(self.nodes.len() - 1)
    }

    /// A constant leaf (no gradient flows into it).
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(value, vec![], None)
    }

    /// A parameter leaf bound to `store[id]`; its gradient lands in
    /// [`Grads::by_param`] at `id`.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let v = self.push(store.value(id).clone(), vec![], None);
        self.nodes[v.0].param = Some(id);
        v
    }

    // -- arithmetic ---------------------------------------------------------

    /// Elementwise sum (exact shapes).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(|g: &Tensor| vec![g.clone(), g.clone()])),
        )
    }

    /// Row-broadcast bias add: `x[R,D] + b[D]`.
    pub fn add_bias(&mut self, x: Var, b: Var) -> Var {
        let value = self.value(x).add_row_broadcast(self.value(b));
        self.push(
            value,
            vec![x.0, b.0],
            Some(Box::new(|g: &Tensor| vec![g.clone(), g.sum_rows()])),
        )
    }

    /// Elementwise product (exact shapes).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let value = av.mul(&bv);
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(move |g: &Tensor| vec![g.mul(&bv), g.mul(&av)])),
        )
    }

    /// Scalar multiply.
    pub fn scale(&mut self, x: Var, s: f32) -> Var {
        let value = self.value(x).scale(s);
        self.push(
            value,
            vec![x.0],
            Some(Box::new(move |g: &Tensor| vec![g.scale(s)])),
        )
    }

    /// Matrix product `a[m,k] @ b[k,n]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let value = matmul(&av, &bv);
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(move |g: &Tensor| {
                vec![matmul_bt(g, &bv), matmul_at(&av, g)]
            })),
        )
    }

    /// `a[m,k] @ b[n,k]^T` (attention scores without materializing Kᵀ).
    pub fn matmul_bt(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a).clone();
        let bv = self.value(b).clone();
        let value = matmul_bt(&av, &bv);
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(move |g: &Tensor| {
                // C = A Bᵀ ⇒ dA = G B ; dB = Gᵀ A
                vec![matmul(g, &bv), matmul_at(g, &av)]
            })),
        )
    }

    /// Reshape (same element count).
    pub fn reshape(&mut self, x: Var, shape: &[usize]) -> Var {
        let old_shape = self.value(x).shape.clone();
        let value = self.value(x).reshape(shape);
        self.push(
            value,
            vec![x.0],
            Some(Box::new(move |g: &Tensor| vec![g.reshape(&old_shape)])),
        )
    }

    /// Column slice: `x[R, C] → x[:, start..start+len]`.
    pub fn slice_cols(&mut self, x: Var, start: usize, len: usize) -> Var {
        let xv = self.value(x);
        let (r, c) = (xv.rows_2d(), xv.last_dim());
        assert!(start + len <= c, "slice_cols {start}+{len} > {c}");
        let mut out = Vec::with_capacity(r * len);
        for row in xv.data.chunks(c) {
            out.extend_from_slice(&row[start..start + len]);
        }
        let value = Tensor::from_vec(&[r, len], out);
        self.push(
            value,
            vec![x.0],
            Some(Box::new(move |g: &Tensor| {
                let mut gx = Tensor::zeros(&[r, c]);
                for (i, row) in g.data.chunks(len).enumerate() {
                    gx.data[i * c + start..i * c + start + len].copy_from_slice(row);
                }
                vec![gx]
            })),
        )
    }

    /// Concatenate along columns: all inputs `[R, C_i] → [R, ΣC_i]`.
    pub fn concat_cols(&mut self, xs: &[Var]) -> Var {
        assert!(!xs.is_empty());
        let r = self.value(xs[0]).rows_2d();
        let widths: Vec<usize> = xs.iter().map(|&v| self.value(v).last_dim()).collect();
        let total: usize = widths.iter().sum();
        let mut out = vec![0.0f32; r * total];
        let mut col0 = 0;
        for (&v, &w) in xs.iter().zip(&widths) {
            let val = self.value(v);
            assert_eq!(val.rows_2d(), r, "concat_cols row mismatch");
            for i in 0..r {
                out[i * total + col0..i * total + col0 + w]
                    .copy_from_slice(&val.data[i * w..i * w + w]);
            }
            col0 += w;
        }
        let value = Tensor::from_vec(&[r, total], out);
        let widths_b = widths.clone();
        self.push(
            value,
            xs.iter().map(|v| v.0).collect(),
            Some(Box::new(move |g: &Tensor| {
                let mut grads = Vec::with_capacity(widths_b.len());
                let mut col0 = 0;
                for &w in &widths_b {
                    let mut gx = vec![0.0f32; r * w];
                    for i in 0..r {
                        gx[i * w..i * w + w]
                            .copy_from_slice(&g.data[i * total + col0..i * total + col0 + w]);
                    }
                    grads.push(Tensor::from_vec(&[r, w], gx));
                    col0 += w;
                }
                grads
            })),
        )
    }

    // -- nonlinearities ------------------------------------------------------

    /// ReLU.
    pub fn relu(&mut self, x: Var) -> Var {
        let xv = self.value(x).clone();
        let value = xv.map(|v| v.max(0.0));
        self.push(
            value,
            vec![x.0],
            Some(Box::new(move |g: &Tensor| {
                vec![g.zip(&xv, |gv, xv| if xv > 0.0 { gv } else { 0.0 })]
            })),
        )
    }

    /// GELU (tanh approximation, as in BERT/SPT-Code).
    pub fn gelu(&mut self, x: Var) -> Var {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        let xv = self.value(x).clone();
        let value = xv.map(|v| 0.5 * v * (1.0 + (C * (v + 0.044715 * v * v * v)).tanh()));
        self.push(
            value,
            vec![x.0],
            Some(Box::new(move |g: &Tensor| {
                vec![g.zip(&xv, |gv, v| {
                    let inner = C * (v + 0.044715 * v * v * v);
                    let t = inner.tanh();
                    let dinner = C * (1.0 + 3.0 * 0.044715 * v * v);
                    let d = 0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * dinner;
                    gv * d
                })]
            })),
        )
    }

    /// Row-wise softmax over the last dim.
    pub fn softmax(&mut self, x: Var) -> Var {
        let value = self.value(x).softmax_lastdim();
        let y = value.clone();
        self.push(
            value,
            vec![x.0],
            Some(Box::new(move |g: &Tensor| {
                // dX = (G − rowsum(G ⊙ Y)) ⊙ Y
                let d = y.last_dim();
                let mut out = g.mul(&y);
                for (o_row, y_row) in out.data.chunks_mut(d).zip(y.data.chunks(d)) {
                    let s: f32 = o_row.iter().sum();
                    for (o, &yv) in o_row.iter_mut().zip(y_row) {
                        *o -= s * yv;
                    }
                }
                vec![out]
            })),
        )
    }

    /// Add a constant mask tensor (e.g. additive −∞ attention mask).
    pub fn add_const(&mut self, x: Var, mask: Tensor) -> Var {
        let value = self.value(x).add(&mask);
        self.push(
            value,
            vec![x.0],
            Some(Box::new(|g: &Tensor| vec![g.clone()])),
        )
    }

    /// LayerNorm over the last dimension with learned `gamma`, `beta` `[D]`.
    pub fn layernorm(&mut self, x: Var, gamma: Var, beta: Var) -> Var {
        const EPS: f32 = 1e-5;
        let xv = self.value(x).clone();
        let gv = self.value(gamma).clone();
        let bv = self.value(beta).clone();
        let d = xv.last_dim();
        let rows = xv.rows_2d();
        let mut value = Tensor::zeros(&xv.shape.clone());
        let mut xhat = Tensor::zeros(&xv.shape.clone());
        let mut inv_std = vec![0.0f32; rows];
        for (i, row) in xv.data.chunks(d).enumerate() {
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + EPS).sqrt();
            inv_std[i] = istd;
            for (j, &v) in row.iter().enumerate() {
                let h = (v - mean) * istd;
                xhat.data[i * d + j] = h;
                value.data[i * d + j] = h * gv.data[j] + bv.data[j];
            }
        }
        self.push(
            value,
            vec![x.0, gamma.0, beta.0],
            Some(Box::new(move |g: &Tensor| {
                let mut gx = Tensor::zeros(&xhat.shape.clone());
                let mut ggamma = Tensor::zeros(&[d]);
                let mut gbeta = Tensor::zeros(&[d]);
                for (i, &istd) in inv_std.iter().enumerate().take(rows) {
                    let g_row = &g.data[i * d..i * d + d];
                    let h_row = &xhat.data[i * d..i * d + d];
                    // dL/dxhat = g * gamma
                    let dxhat: Vec<f32> = g_row
                        .iter()
                        .zip(&gv.data)
                        .map(|(&gg, &gm)| gg * gm)
                        .collect();
                    let sum_dxhat: f32 = dxhat.iter().sum();
                    let sum_dxhat_h: f32 = dxhat.iter().zip(h_row).map(|(&a, &b)| a * b).sum();
                    for j in 0..d {
                        gx.data[i * d + j] = istd / d as f32
                            * (d as f32 * dxhat[j] - sum_dxhat - h_row[j] * sum_dxhat_h);
                        ggamma.data[j] += g_row[j] * h_row[j];
                        gbeta.data[j] += g_row[j];
                    }
                }
                vec![gx, ggamma, gbeta]
            })),
        )
    }

    /// Embedding lookup: `weight[V, D]` gathered at `ids` → `[T, D]`.
    pub fn embedding(&mut self, weight: Var, ids: &[usize]) -> Var {
        let wv = self.value(weight);
        let (v, d) = (wv.shape[0], wv.shape[1]);
        let mut out = Vec::with_capacity(ids.len() * d);
        for &id in ids {
            assert!(id < v, "embedding id {id} out of vocab {v}");
            out.extend_from_slice(&wv.data[id * d..id * d + d]);
        }
        let value = Tensor::from_vec(&[ids.len(), d], out);
        let ids_b = ids.to_vec();
        self.push(
            value,
            vec![weight.0],
            Some(Box::new(move |g: &Tensor| {
                let mut gw = Tensor::zeros(&[v, d]);
                for (t, &id) in ids_b.iter().enumerate() {
                    let src = &g.data[t * d..t * d + d];
                    let dst = &mut gw.data[id * d..id * d + d];
                    for (o, s) in dst.iter_mut().zip(src) {
                        *o += s;
                    }
                }
                vec![gw]
            })),
        )
    }

    /// Inverted dropout with keep-probability `1 - p`; identity when `p == 0`.
    /// The mask is generated from `seed` so runs are reproducible.
    pub fn dropout(&mut self, x: Var, p: f32, seed: u64) -> Var {
        if p <= 0.0 {
            return x;
        }
        assert!(p < 1.0, "dropout p must be < 1");
        let n = self.value(x).numel();
        // xorshift mask generation — cheap and seed-stable.
        let mut state = seed | 1;
        let keep = 1.0 - p;
        let inv_keep = 1.0 / keep;
        let mut mask = Vec::with_capacity(n);
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f32 / (1u64 << 53) as f32;
            mask.push(if u < keep { inv_keep } else { 0.0 });
        }
        let mask = Tensor::from_vec(&self.value(x).shape.clone(), mask);
        let value = self.value(x).mul(&mask);
        self.push(
            value,
            vec![x.0],
            Some(Box::new(move |g: &Tensor| vec![g.mul(&mask)])),
        )
    }

    /// Fused softmax-cross-entropy over rows of `logits[T, V]` against
    /// `targets` (one class id per row). Rows with `weights[t] == 0.0` are
    /// ignored (padding); the loss is the weighted mean. Returns a scalar.
    pub fn cross_entropy(&mut self, logits: Var, targets: &[usize], weights: &[f32]) -> Var {
        let lv = self.value(logits).clone();
        let vsz = lv.last_dim();
        let t = lv.rows_2d();
        assert_eq!(targets.len(), t, "one target per row");
        assert_eq!(weights.len(), t, "one weight per row");
        let probs = lv.softmax_lastdim();
        let wsum: f32 = weights.iter().sum::<f32>().max(1e-12);
        let mut loss = 0.0f32;
        for (i, (&tgt, &w)) in targets.iter().zip(weights).enumerate() {
            if w == 0.0 {
                continue;
            }
            assert!(tgt < vsz, "target {tgt} out of vocab {vsz}");
            let p = probs.data[i * vsz + tgt].max(1e-30);
            loss -= w * p.ln();
        }
        loss /= wsum;
        let targets_b = targets.to_vec();
        let weights_b = weights.to_vec();
        self.push(
            Tensor::scalar(loss),
            vec![logits.0],
            Some(Box::new(move |g: &Tensor| {
                let go = g.item();
                let mut gx = probs.clone();
                for (i, (&tgt, &w)) in targets_b.iter().zip(&weights_b).enumerate() {
                    let row = &mut gx.data[i * vsz..i * vsz + vsz];
                    if w == 0.0 {
                        for v in row.iter_mut() {
                            *v = 0.0;
                        }
                        continue;
                    }
                    row[tgt] -= 1.0;
                    for v in row.iter_mut() {
                        *v *= go * w / wsum;
                    }
                }
                vec![gx]
            })),
        )
    }

    /// Mean of all elements → scalar.
    pub fn mean_all(&mut self, x: Var) -> Var {
        let n = self.value(x).numel() as f32;
        let shape = self.value(x).shape.clone();
        let value = Tensor::scalar(self.value(x).mean());
        self.push(
            value,
            vec![x.0],
            Some(Box::new(move |g: &Tensor| {
                vec![Tensor::full(&shape, g.item() / n)]
            })),
        )
    }

    // -- backward ------------------------------------------------------------

    /// Run reverse-mode accumulation from `root` (must be scalar-shaped for
    /// a loss, but any shape works with an implicit all-ones seed).
    pub fn backward(&mut self, root: Var) -> Grads {
        let mut node_grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        let seed = Tensor::ones(&self.nodes[root.0].value.shape);
        node_grads[root.0] = Some(seed);
        let mut out = Grads::default();
        for id in (0..=root.0).rev() {
            let Some(g) = node_grads[id].take() else {
                continue;
            };
            let node = &self.nodes[id];
            if let Some(pid) = node.param {
                if out.by_param.len() <= pid.0 {
                    out.by_param.resize(pid.0 + 1, None);
                }
                match &mut out.by_param[pid.0] {
                    Some(acc) => acc.add_assign(&g),
                    slot => *slot = Some(g.clone()),
                }
            }
            if let Some(back) = &node.backward {
                let parent_grads = back(&g);
                assert_eq!(parent_grads.len(), node.parents.len());
                for (pid, pg) in node.parents.clone().into_iter().zip(parent_grads) {
                    match &mut node_grads[pid] {
                        Some(acc) => acc.add_assign(&pg),
                        slot => *slot = Some(pg),
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Numerical gradient of `f(store)` w.r.t. parameter `id`, central
    /// differences.
    fn numeric_grad(
        store: &mut ParamStore,
        id: ParamId,
        f: &dyn Fn(&ParamStore) -> f32,
        eps: f32,
    ) -> Tensor {
        let n = store.value(id).numel();
        let mut grad = Tensor::zeros(&store.value(id).shape.clone());
        for i in 0..n {
            let orig = store.value(id).data[i];
            store.value_mut(id).data[i] = orig + eps;
            let fp = f(store);
            store.value_mut(id).data[i] = orig - eps;
            let fm = f(store);
            store.value_mut(id).data[i] = orig;
            grad.data[i] = (fp - fm) / (2.0 * eps);
        }
        grad
    }

    fn assert_grad_close(analytic: &Tensor, numeric: &Tensor, tol: f32) {
        assert_eq!(analytic.shape, numeric.shape);
        for (i, (a, n)) in analytic.data.iter().zip(&numeric.data).enumerate() {
            let denom = 1.0f32.max(a.abs()).max(n.abs());
            assert!(
                (a - n).abs() / denom < tol,
                "grad elem {i}: analytic {a} vs numeric {n}"
            );
        }
    }

    fn store_with(shapes: &[(&str, &[usize])]) -> (ParamStore, Vec<ParamId>) {
        let mut rng = StdRng::seed_from_u64(42);
        let mut store = ParamStore::new();
        let ids = shapes
            .iter()
            .map(|(name, shape)| store.add(name, init::normal(shape, 0.5, &mut rng)))
            .collect();
        (store, ids)
    }

    #[test]
    fn grad_check_matmul_chain() {
        let (mut store, ids) = store_with(&[("a", &[3, 4]), ("b", &[4, 2])]);
        let f = |s: &ParamStore| {
            let mut tape = Tape::new();
            let a = tape.param(s, ids[0]);
            let b = tape.param(s, ids[1]);
            let c = tape.matmul(a, b);
            let l = tape.mean_all(c);
            tape.value(l).item()
        };
        let mut tape = Tape::new();
        let a = tape.param(&store, ids[0]);
        let b = tape.param(&store, ids[1]);
        let c = tape.matmul(a, b);
        let l = tape.mean_all(c);
        let grads = tape.backward(l);
        for &id in &ids {
            let num = numeric_grad(&mut store, id, &f, 1e-2);
            assert_grad_close(grads.get(id).unwrap(), &num, 2e-2);
        }
    }

    #[test]
    fn grad_check_softmax_ce() {
        let (mut store, ids) = store_with(&[("logits", &[4, 5])]);
        let targets = [1usize, 0, 4, 2];
        let weights = [1.0f32, 1.0, 0.0, 1.0]; // one masked row
        let f = |s: &ParamStore| {
            let mut tape = Tape::new();
            let x = tape.param(s, ids[0]);
            let l = tape.cross_entropy(x, &targets, &weights);
            tape.value(l).item()
        };
        let mut tape = Tape::new();
        let x = tape.param(&store, ids[0]);
        let l = tape.cross_entropy(x, &targets, &weights);
        let grads = tape.backward(l);
        let num = numeric_grad(&mut store, ids[0], &f, 1e-2);
        assert_grad_close(grads.get(ids[0]).unwrap(), &num, 2e-2);
        // Masked row has zero gradient.
        let g = grads.get(ids[0]).unwrap();
        assert!(g.data[2 * 5..3 * 5].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn grad_check_layernorm() {
        let (mut store, ids) = store_with(&[("x", &[3, 6]), ("gamma", &[6]), ("beta", &[6])]);
        let f = |s: &ParamStore| {
            let mut tape = Tape::new();
            let x = tape.param(s, ids[0]);
            let g = tape.param(s, ids[1]);
            let b = tape.param(s, ids[2]);
            let y = tape.layernorm(x, g, b);
            let sq = tape.mul(y, y);
            let l = tape.mean_all(sq);
            tape.value(l).item()
        };
        let mut tape = Tape::new();
        let x = tape.param(&store, ids[0]);
        let g = tape.param(&store, ids[1]);
        let b = tape.param(&store, ids[2]);
        let y = tape.layernorm(x, g, b);
        let sq = tape.mul(y, y);
        let l = tape.mean_all(sq);
        let grads = tape.backward(l);
        for &id in &ids {
            let num = numeric_grad(&mut store, id, &f, 1e-2);
            assert_grad_close(grads.get(id).unwrap(), &num, 5e-2);
        }
    }

    #[test]
    fn grad_check_gelu_and_relu() {
        let (mut store, ids) = store_with(&[("x", &[2, 5])]);
        let id0 = ids[0];
        for act in 0..2 {
            let f = move |s: &ParamStore| {
                let mut tape = Tape::new();
                let x = tape.param(s, id0);
                let y = if act == 0 { tape.gelu(x) } else { tape.relu(x) };
                let l = tape.mean_all(y);
                tape.value(l).item()
            };
            let mut tape = Tape::new();
            let x = tape.param(&store, ids[0]);
            let y = if act == 0 { tape.gelu(x) } else { tape.relu(x) };
            let l = tape.mean_all(y);
            let grads = tape.backward(l);
            let num = numeric_grad(&mut store, ids[0], &f, 1e-2);
            assert_grad_close(grads.get(ids[0]).unwrap(), &num, 3e-2);
        }
    }

    #[test]
    fn grad_check_embedding() {
        let (mut store, ids) = store_with(&[("emb", &[7, 4])]);
        let tokens = [2usize, 5, 2, 0]; // repeated id accumulates
        let f = |s: &ParamStore| {
            let mut tape = Tape::new();
            let w = tape.param(s, ids[0]);
            let e = tape.embedding(w, &tokens);
            let sq = tape.mul(e, e);
            let l = tape.mean_all(sq);
            tape.value(l).item()
        };
        let mut tape = Tape::new();
        let w = tape.param(&store, ids[0]);
        let e = tape.embedding(w, &tokens);
        let sq = tape.mul(e, e);
        let l = tape.mean_all(sq);
        let grads = tape.backward(l);
        let num = numeric_grad(&mut store, ids[0], &f, 1e-2);
        assert_grad_close(grads.get(ids[0]).unwrap(), &num, 3e-2);
        // Unused vocab rows get zero grad.
        let g = grads.get(ids[0]).unwrap();
        assert!(g.data[4..2 * 4].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn grad_check_slice_concat() {
        let (mut store, ids) = store_with(&[("x", &[3, 6])]);
        let f = |s: &ParamStore| {
            let mut tape = Tape::new();
            let x = tape.param(s, ids[0]);
            let a = tape.slice_cols(x, 0, 3);
            let b = tape.slice_cols(x, 3, 3);
            let prod = tape.mul(a, b);
            let cat = tape.concat_cols(&[prod, a]);
            let l = tape.mean_all(cat);
            tape.value(l).item()
        };
        let mut tape = Tape::new();
        let x = tape.param(&store, ids[0]);
        let a = tape.slice_cols(x, 0, 3);
        let b = tape.slice_cols(x, 3, 3);
        let prod = tape.mul(a, b);
        let cat = tape.concat_cols(&[prod, a]);
        let l = tape.mean_all(cat);
        let grads = tape.backward(l);
        let num = numeric_grad(&mut store, ids[0], &f, 1e-2);
        assert_grad_close(grads.get(ids[0]).unwrap(), &num, 2e-2);
    }

    #[test]
    fn grad_check_matmul_bt_and_softmax() {
        let (mut store, ids) = store_with(&[("q", &[3, 4]), ("k", &[3, 4])]);
        let f = |s: &ParamStore| {
            let mut tape = Tape::new();
            let q = tape.param(s, ids[0]);
            let k = tape.param(s, ids[1]);
            let scores = tape.matmul_bt(q, k);
            let probs = tape.softmax(scores);
            let l = tape.mean_all(probs);
            tape.value(l).item()
        };
        let mut tape = Tape::new();
        let q = tape.param(&store, ids[0]);
        let k = tape.param(&store, ids[1]);
        let scores = tape.matmul_bt(q, k);
        let probs = tape.softmax(scores);
        let l = tape.mean_all(probs);
        let grads = tape.backward(l);
        for &id in &ids {
            let num = numeric_grad(&mut store, id, &f, 1e-2);
            assert_grad_close(grads.get(id).unwrap(), &num, 5e-2);
        }
    }

    #[test]
    fn fanout_accumulates() {
        // y = x + x must give grad 2.
        let (store, ids) = store_with(&[("x", &[2, 2])]);
        let mut tape = Tape::new();
        let x = tape.param(&store, ids[0]);
        let y = tape.add(x, x);
        let l = tape.mean_all(y);
        let grads = tape.backward(l);
        let g = grads.get(ids[0]).unwrap();
        for &v in &g.data {
            assert!((v - 2.0 / 4.0).abs() < 1e-6);
        }
    }

    #[test]
    fn dropout_zero_is_identity() {
        let (store, ids) = store_with(&[("x", &[2, 3])]);
        let mut tape = Tape::new();
        let x = tape.param(&store, ids[0]);
        let y = tape.dropout(x, 0.0, 9);
        assert_eq!(x, y);
    }

    #[test]
    fn dropout_scales_survivors() {
        let (store, ids) = store_with(&[("x", &[1, 1000])]);
        let mut tape = Tape::new();
        let x = tape.param(&store, ids[0]);
        let y = tape.dropout(x, 0.5, 1234);
        let xv = tape.value(x).clone();
        let yv = tape.value(y).clone();
        let mut kept = 0;
        for (a, b) in xv.data.iter().zip(&yv.data) {
            if *b != 0.0 {
                kept += 1;
                assert!((b / a - 2.0).abs() < 1e-5, "survivors scaled by 1/keep");
            }
        }
        assert!((300..700).contains(&kept), "about half survive: {kept}");
    }

    #[test]
    fn grads_merge_and_clip() {
        let mut a = Grads {
            by_param: vec![Some(Tensor::from_vec(&[2], vec![3.0, 4.0])), None],
        };
        let b = Grads {
            by_param: vec![
                Some(Tensor::from_vec(&[2], vec![1.0, 1.0])),
                Some(Tensor::from_vec(&[1], vec![2.0])),
            ],
        };
        a.merge(&b);
        assert_eq!(a.by_param[0].as_ref().unwrap().data, vec![4.0, 5.0]);
        assert_eq!(a.by_param[1].as_ref().unwrap().data, vec![2.0]);
        let norm = a.global_norm();
        assert!((norm - (16.0f32 + 25.0 + 4.0).sqrt()).abs() < 1e-5);
        let pre = a.clip_global_norm(1.0);
        assert!((pre - norm).abs() < 1e-6);
        assert!((a.global_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn backward_ignores_unreached_nodes() {
        let (store, ids) = store_with(&[("x", &[2, 2]), ("y", &[2, 2])]);
        let mut tape = Tape::new();
        let x = tape.param(&store, ids[0]);
        let _unused = tape.param(&store, ids[1]);
        let l = tape.mean_all(x);
        let grads = tape.backward(l);
        assert!(grads.get(ids[0]).is_some());
        assert!(grads.get(ids[1]).is_none());
    }
}
