//! Matrix multiplication — the training and inference hot path.
//!
//! The `matmul` kernel uses the cache-friendly i-k-j loop order (row-major A
//! and B), which lets LLVM vectorize the inner j-loop. Above a size
//! threshold the output-row range is split across crossbeam scoped threads:
//! each thread owns a disjoint slice of the output, so there is no
//! synchronization on the hot path (the pattern the HPC guides recommend:
//! partition output, share read-only inputs). `matmul_bt` (`A·Bᵀ`) and
//! `matmul_at` (`Aᵀ·B`) use the same row-partition scheme.
//!
//! For KV-cached incremental decoding, where every activation is a single
//! row, the [`vecmat`] / [`vecmat_bt`] kernels compute `v · M` and `v · Mᵀ`
//! without materializing a 1-row `Tensor` per operand: they take and return
//! plain slices, so a decode step does zero intermediate allocations beyond
//! its output buffers.

use crate::tensor::Tensor;

/// Work threshold (in multiply-adds) below which threading is not worth it.
const PAR_THRESHOLD: usize = 1 << 18;

/// Global thread cap for matmul (defaults to available parallelism).
pub fn matmul_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `C[m,n] = A[m,k] @ B[k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul lhs must be 2-D, got {:?}", a.shape);
    assert_eq!(b.ndim(), 2, "matmul rhs must be 2-D, got {:?}", b.shape);
    let (m, k) = (a.shape[0], a.shape[1]);
    let (k2, n) = (b.shape[0], b.shape[1]);
    assert_eq!(k, k2, "matmul inner dims: {:?} @ {:?}", a.shape, b.shape);
    let mut out = vec![0.0f32; m * n];
    let threads = matmul_threads();
    if m * n * k >= PAR_THRESHOLD && threads > 1 && m > 1 {
        let rows_per = m.div_ceil(threads);
        crossbeam::scope(|scope| {
            for (t, chunk) in out.chunks_mut(rows_per * n).enumerate() {
                let a_data = &a.data;
                let b_data = &b.data;
                scope.spawn(move |_| {
                    let row0 = t * rows_per;
                    kernel(a_data, b_data, chunk, row0, chunk.len() / n, k, n);
                });
            }
        })
        .expect("matmul threads do not panic");
    } else {
        kernel(&a.data, &b.data, &mut out, 0, m, k, n);
    }
    Tensor::from_vec(&[m, n], out)
}

/// Serial kernel over rows `[row0, row0+rows)` writing into `out` (which
/// holds exactly `rows * n` elements).
#[inline]
fn kernel(a: &[f32], b: &[f32], out: &mut [f32], row0: usize, rows: usize, k: usize, n: usize) {
    for i in 0..rows {
        let a_row = &a[(row0 + i) * k..(row0 + i) * k + k];
        let c_row = &mut out[i * n..i * n + n];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..kk * n + n];
            for (c, &bv) in c_row.iter_mut().zip(b_row) {
                *c += aik * bv;
            }
        }
    }
}

/// `C = A @ B^T` where `A[m,k]`, `B[n,k]` → `C[m,n]`.
/// Used by attention (`Q @ K^T`) and by matmul backward without forming an
/// explicit transpose.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2);
    assert_eq!(b.ndim(), 2);
    let (m, k) = (a.shape[0], a.shape[1]);
    let (n, k2) = (b.shape[0], b.shape[1]);
    assert_eq!(
        k, k2,
        "matmul_bt inner dims: {:?} @ {:?}^T",
        a.shape, b.shape
    );
    let mut out = vec![0.0f32; m * n];
    let threads = matmul_threads();
    if m * n * k >= PAR_THRESHOLD && threads > 1 && m > 1 {
        let rows_per = m.div_ceil(threads);
        crossbeam::scope(|scope| {
            for (t, chunk) in out.chunks_mut(rows_per * n).enumerate() {
                let a_data = &a.data;
                let b_data = &b.data;
                scope.spawn(move |_| {
                    kernel_bt(a_data, b_data, chunk, t * rows_per, chunk.len() / n, k, n);
                });
            }
        })
        .expect("matmul_bt threads do not panic");
    } else {
        kernel_bt(&a.data, &b.data, &mut out, 0, m, k, n);
    }
    Tensor::from_vec(&[m, n], out)
}

/// Serial `A·Bᵀ` kernel over output rows `[row0, row0+rows)`.
#[inline]
fn kernel_bt(a: &[f32], b: &[f32], out: &mut [f32], row0: usize, rows: usize, k: usize, n: usize) {
    for i in 0..rows {
        let a_row = &a[(row0 + i) * k..(row0 + i) * k + k];
        let o_row = &mut out[i * n..i * n + n];
        for (o, b_row) in o_row.iter_mut().zip(b.chunks_exact(k)) {
            *o = dot(a_row, b_row);
        }
    }
}

/// Dense dot product, written to vectorize.
#[inline]
fn dot(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (a, b) in x.iter().zip(y) {
        acc += a * b;
    }
    acc
}

/// `C = A^T @ B` where `A[k,m]`, `B[k,n]` → `C[m,n]`.
/// Used by matmul backward for the weight gradient.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2);
    assert_eq!(b.ndim(), 2);
    let (k, m) = (a.shape[0], a.shape[1]);
    let (k2, n) = (b.shape[0], b.shape[1]);
    assert_eq!(
        k, k2,
        "matmul_at inner dims: {:?}^T @ {:?}",
        a.shape, b.shape
    );
    let mut out = vec![0.0f32; m * n];
    let threads = matmul_threads();
    if m * n * k >= PAR_THRESHOLD && threads > 1 && m > 1 {
        let rows_per = m.div_ceil(threads);
        crossbeam::scope(|scope| {
            for (t, chunk) in out.chunks_mut(rows_per * n).enumerate() {
                // Offset A by the thread's first output row; `kernel_at`
                // reads column `i` of the shifted view.
                let a_data = &a.data[t * rows_per..];
                let b_data = &b.data;
                scope.spawn(move |_| {
                    kernel_at(a_data, b_data, chunk, chunk.len() / n, k, m, n);
                });
            }
        })
        .expect("matmul_at threads do not panic");
    } else {
        kernel_at(&a.data, &b.data, &mut out, m, k, m, n);
    }
    Tensor::from_vec(&[m, n], out)
}

/// Serial `Aᵀ·B` kernel over `rows` output rows. `a` is A's data offset so
/// that output row `i` reads column `i` of the shifted view: row `i` is
/// `Σ_k a[k·m + i] · B[k, :]` — a column-strided read of A, but each thread
/// still owns a disjoint output slice.
#[inline]
fn kernel_at(a: &[f32], b: &[f32], out: &mut [f32], rows: usize, k: usize, m: usize, n: usize) {
    for i in 0..rows {
        let o_row = &mut out[i * n..i * n + n];
        for kk in 0..k {
            let av = a[kk * m + i];
            if av == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..kk * n + n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Single-row product `v[k] @ M[k, n] → out[n]`, accumulated in i-k-j order
/// (the 1-row specialization of [`matmul`]). Slices in, slice out — no
/// tensor allocation on the incremental-decode hot path.
pub fn vecmat(v: &[f32], m: &Tensor, out: &mut [f32]) {
    assert_eq!(m.ndim(), 2, "vecmat rhs must be 2-D, got {:?}", m.shape);
    let (k, n) = (m.shape[0], m.shape[1]);
    assert_eq!(
        v.len(),
        k,
        "vecmat inner dims: [{}] @ {:?}",
        v.len(),
        m.shape
    );
    assert_eq!(out.len(), n, "vecmat output length");
    out.fill(0.0);
    for (kk, &vv) in v.iter().enumerate() {
        if vv == 0.0 {
            continue;
        }
        let m_row = &m.data[kk * n..kk * n + n];
        for (o, &mv) in out.iter_mut().zip(m_row) {
            *o += vv * mv;
        }
    }
}

/// Single-row transposed product `v[k] @ M[n, k]ᵀ → out[n]`: `out[j]` is the
/// dot product of `v` with row `j` of `M`. This is exactly the shape of
/// cached attention scores (`q · Kᵀ` with K stored row-per-position).
pub fn vecmat_bt(v: &[f32], m: &Tensor, out: &mut [f32]) {
    assert_eq!(m.ndim(), 2, "vecmat_bt rhs must be 2-D, got {:?}", m.shape);
    let (n, k) = (m.shape[0], m.shape[1]);
    assert_eq!(
        v.len(),
        k,
        "vecmat_bt inner dims: [{}] @ {:?}^T",
        v.len(),
        m.shape
    );
    assert_eq!(out.len(), n, "vecmat_bt output length");
    for (o, m_row) in out.iter_mut().zip(m.data.chunks_exact(k)) {
        *o = dot(v, m_row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape[0], a.shape[1]);
        let n = b.shape[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at2(i, kk) * b.at2(kk, j);
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    fn seq_tensor(shape: &[usize], start: f32) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(
            shape,
            (0..n)
                .map(|i| start + (i as f32) * 0.37 - (i % 7) as f32)
                .collect(),
        )
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape, b.shape);
        for (i, (x, y)) in a.data.iter().zip(&b.data).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "elem {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn small_matmul_exact() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape, vec![2, 2]);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matches_naive_various_sizes() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (8, 8, 8), (17, 13, 19), (32, 1, 32)] {
            let a = seq_tensor(&[m, k], 0.5);
            let b = seq_tensor(&[k, n], -1.25);
            assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-5);
        }
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Force through the parallel branch (m*n*k >= threshold).
        let a = seq_tensor(&[128, 64], 0.1);
        let b = seq_tensor(&[64, 64], 0.2);
        let big = matmul(&a, &b);
        assert_close(&big, &naive(&a, &b), 1e-3);
    }

    #[test]
    fn bt_equals_explicit_transpose() {
        let a = seq_tensor(&[5, 7], 0.3);
        let b = seq_tensor(&[4, 7], -0.6);
        assert_close(&matmul_bt(&a, &b), &matmul(&a, &b.transpose2()), 1e-5);
    }

    #[test]
    fn at_equals_explicit_transpose() {
        let a = seq_tensor(&[7, 5], 0.3);
        let b = seq_tensor(&[7, 4], -0.6);
        assert_close(&matmul_at(&a, &b), &matmul(&a.transpose2(), &b), 1e-5);
    }

    #[test]
    fn bt_parallel_path_matches_serial() {
        // 128×64×64 = 2^19 multiply-adds ≥ PAR_THRESHOLD → threaded branch.
        let a = seq_tensor(&[128, 64], 0.1);
        let b = seq_tensor(&[64, 64], 0.2);
        assert_close(&matmul_bt(&a, &b), &naive(&a, &b.transpose2()), 1e-3);
    }

    #[test]
    fn at_parallel_path_matches_serial() {
        let a = seq_tensor(&[64, 128], 0.1);
        let b = seq_tensor(&[64, 64], 0.2);
        assert_close(&matmul_at(&a, &b), &naive(&a.transpose2(), &b), 1e-3);
    }

    #[test]
    fn vecmat_equals_one_row_matmul() {
        let a = seq_tensor(&[1, 9], 0.4);
        let m = seq_tensor(&[9, 13], -0.2);
        let mut out = vec![0.0f32; 13];
        vecmat(&a.data, &m, &mut out);
        assert_close(&Tensor::from_vec(&[1, 13], out), &matmul(&a, &m), 1e-5);
    }

    #[test]
    fn vecmat_bt_equals_one_row_matmul_bt() {
        let a = seq_tensor(&[1, 9], 0.4);
        let m = seq_tensor(&[13, 9], -0.2);
        let mut out = vec![0.0f32; 13];
        vecmat_bt(&a.data, &m, &mut out);
        assert_close(&Tensor::from_vec(&[1, 13], out), &matmul_bt(&a, &m), 1e-5);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn vecmat_dim_mismatch_panics() {
        let mut out = vec![0.0f32; 2];
        vecmat(&[1.0, 2.0, 3.0], &Tensor::zeros(&[4, 2]), &mut out);
    }

    #[test]
    fn identity_is_neutral() {
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            eye.data[i * 4 + i] = 1.0;
        }
        let a = seq_tensor(&[4, 4], 2.0);
        assert_close(&matmul(&a, &eye), &a, 0.0);
        assert_close(&matmul(&eye, &a), &a, 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn dim_mismatch_panics() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }
}
