//! Matrix multiplication — the training and inference hot path.
//!
//! The `matmul` kernel uses the cache-friendly i-k-j loop order (row-major A
//! and B), which lets LLVM vectorize the inner j-loop. Above a size
//! threshold the output-row range is split across crossbeam scoped threads:
//! each thread owns a disjoint slice of the output, so there is no
//! synchronization on the hot path (the pattern the HPC guides recommend:
//! partition output, share read-only inputs). `matmul_bt` (`A·Bᵀ`) and
//! `matmul_at` (`Aᵀ·B`) use the same row-partition scheme.
//!
//! For KV-cached incremental decoding, where every activation is a single
//! row, the [`vecmat`] / [`vecmat_bt`] kernels compute `v · M` and `v · Mᵀ`
//! without materializing a 1-row `Tensor` per operand: they take and return
//! plain slices, so a decode step does zero intermediate allocations beyond
//! its output buffers.

use crate::tensor::Tensor;

/// Work threshold (in multiply-adds) below which threading is not worth it.
const PAR_THRESHOLD: usize = 1 << 18;

/// Global thread cap for matmul (defaults to available parallelism).
pub fn matmul_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `C[m,n] = A[m,k] @ B[k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul lhs must be 2-D, got {:?}", a.shape);
    assert_eq!(b.ndim(), 2, "matmul rhs must be 2-D, got {:?}", b.shape);
    let (m, k) = (a.shape[0], a.shape[1]);
    let (k2, n) = (b.shape[0], b.shape[1]);
    assert_eq!(k, k2, "matmul inner dims: {:?} @ {:?}", a.shape, b.shape);
    let mut out = vec![0.0f32; m * n];
    let threads = matmul_threads();
    if m * n * k >= PAR_THRESHOLD && threads > 1 && m > 1 {
        let rows_per = m.div_ceil(threads);
        crossbeam::scope(|scope| {
            for (t, chunk) in out.chunks_mut(rows_per * n).enumerate() {
                let a_data = &a.data;
                let b_data = &b.data;
                scope.spawn(move |_| {
                    let row0 = t * rows_per;
                    kernel(a_data, b_data, chunk, row0, chunk.len() / n, k, n);
                });
            }
        })
        .expect("matmul threads do not panic");
    } else {
        kernel(&a.data, &b.data, &mut out, 0, m, k, n);
    }
    Tensor::from_vec(&[m, n], out)
}

/// Serial kernel over rows `[row0, row0+rows)` writing into `out` (which
/// holds exactly `rows * n` elements).
#[inline]
fn kernel(a: &[f32], b: &[f32], out: &mut [f32], row0: usize, rows: usize, k: usize, n: usize) {
    for i in 0..rows {
        let a_row = &a[(row0 + i) * k..(row0 + i) * k + k];
        let c_row = &mut out[i * n..i * n + n];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..kk * n + n];
            for (c, &bv) in c_row.iter_mut().zip(b_row) {
                *c += aik * bv;
            }
        }
    }
}

/// `C = A @ B^T` where `A[m,k]`, `B[n,k]` → `C[m,n]`.
/// Used by attention (`Q @ K^T`) and by matmul backward without forming an
/// explicit transpose.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2);
    assert_eq!(b.ndim(), 2);
    let (m, k) = (a.shape[0], a.shape[1]);
    let (n, k2) = (b.shape[0], b.shape[1]);
    assert_eq!(
        k, k2,
        "matmul_bt inner dims: {:?} @ {:?}^T",
        a.shape, b.shape
    );
    let mut out = vec![0.0f32; m * n];
    let threads = matmul_threads();
    if m * n * k >= PAR_THRESHOLD && threads > 1 && m > 1 {
        let rows_per = m.div_ceil(threads);
        crossbeam::scope(|scope| {
            for (t, chunk) in out.chunks_mut(rows_per * n).enumerate() {
                let a_data = &a.data;
                let b_data = &b.data;
                scope.spawn(move |_| {
                    kernel_bt(a_data, b_data, chunk, t * rows_per, chunk.len() / n, k, n);
                });
            }
        })
        .expect("matmul_bt threads do not panic");
    } else {
        kernel_bt(&a.data, &b.data, &mut out, 0, m, k, n);
    }
    Tensor::from_vec(&[m, n], out)
}

/// Serial `A·Bᵀ` kernel over output rows `[row0, row0+rows)`.
#[inline]
fn kernel_bt(a: &[f32], b: &[f32], out: &mut [f32], row0: usize, rows: usize, k: usize, n: usize) {
    for i in 0..rows {
        let a_row = &a[(row0 + i) * k..(row0 + i) * k + k];
        let o_row = &mut out[i * n..i * n + n];
        for (o, b_row) in o_row.iter_mut().zip(b.chunks_exact(k)) {
            *o = dot(a_row, b_row);
        }
    }
}

/// Dense dot product over 8 lane-strided partial sums.
///
/// A naive `acc += x*y` loop is a single sequential float chain — strict FP
/// semantics forbid LLVM from vectorizing it, capping attention score rows
/// (`q · Kᵀ`) at roughly one multiply-add per FMA-latency. Eight independent
/// accumulators turn the loop into one SIMD FMA per 8 elements; the lanes
/// are reduced pairwise at the end. (This changes the summation *order*
/// relative to the naive loop — fine for every consumer, which tolerate
/// f32 accumulation-order noise — but stays deterministic, and both the
/// single-request and batched decode paths share this one implementation,
/// so their attention scores remain bitwise identical to each other.)
#[inline]
fn dot(x: &[f32], y: &[f32]) -> f32 {
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let xc = x.chunks_exact(LANES);
    let yc = y.chunks_exact(LANES);
    let mut tail = 0.0f32;
    for (a, b) in xc.remainder().iter().zip(yc.remainder()) {
        tail += a * b;
    }
    for (xs, ys) in xc.zip(yc) {
        for l in 0..LANES {
            acc[l] += xs[l] * ys[l];
        }
    }
    let s4: [f32; 4] = std::array::from_fn(|l| acc[l] + acc[l + 4]);
    let s2 = [s4[0] + s4[2], s4[1] + s4[3]];
    s2[0] + s2[1] + tail
}

/// `C = A^T @ B` where `A[k,m]`, `B[k,n]` → `C[m,n]`.
/// Used by matmul backward for the weight gradient.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2);
    assert_eq!(b.ndim(), 2);
    let (k, m) = (a.shape[0], a.shape[1]);
    let (k2, n) = (b.shape[0], b.shape[1]);
    assert_eq!(
        k, k2,
        "matmul_at inner dims: {:?}^T @ {:?}",
        a.shape, b.shape
    );
    let mut out = vec![0.0f32; m * n];
    let threads = matmul_threads();
    if m * n * k >= PAR_THRESHOLD && threads > 1 && m > 1 {
        let rows_per = m.div_ceil(threads);
        crossbeam::scope(|scope| {
            for (t, chunk) in out.chunks_mut(rows_per * n).enumerate() {
                // Offset A by the thread's first output row; `kernel_at`
                // reads column `i` of the shifted view.
                let a_data = &a.data[t * rows_per..];
                let b_data = &b.data;
                scope.spawn(move |_| {
                    kernel_at(a_data, b_data, chunk, chunk.len() / n, k, m, n);
                });
            }
        })
        .expect("matmul_at threads do not panic");
    } else {
        kernel_at(&a.data, &b.data, &mut out, m, k, m, n);
    }
    Tensor::from_vec(&[m, n], out)
}

/// Serial `Aᵀ·B` kernel over `rows` output rows. `a` is A's data offset so
/// that output row `i` reads column `i` of the shifted view: row `i` is
/// `Σ_k a[k·m + i] · B[k, :]` — a column-strided read of A, but each thread
/// still owns a disjoint output slice.
#[inline]
fn kernel_at(a: &[f32], b: &[f32], out: &mut [f32], rows: usize, k: usize, m: usize, n: usize) {
    for i in 0..rows {
        let o_row = &mut out[i * n..i * n + n];
        for kk in 0..k {
            let av = a[kk * m + i];
            if av == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..kk * n + n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Single-row product `v[k] @ M[k, n] → out[n]`, accumulated in i-k-j order
/// (the 1-row specialization of [`matmul`]). Slices in, slice out — no
/// tensor allocation on the incremental-decode hot path.
pub fn vecmat(v: &[f32], m: &Tensor, out: &mut [f32]) {
    assert_eq!(m.ndim(), 2, "vecmat rhs must be 2-D, got {:?}", m.shape);
    let (k, n) = (m.shape[0], m.shape[1]);
    assert_eq!(
        v.len(),
        k,
        "vecmat inner dims: [{}] @ {:?}",
        v.len(),
        m.shape
    );
    assert_eq!(out.len(), n, "vecmat output length");
    out.fill(0.0);
    vecmat_acc(v, &m.data, n, out);
}

/// Accumulating single-row product over a raw row-major block:
/// `out[j] += Σ_k v[k] · m[k·cols + j]`, rows added in ascending-`k` order
/// into the caller's accumulator.
///
/// This is [`vecmat`] minus the zero-fill, exposed on plain slices so
/// callers that store their matrix in non-contiguous blocks (the paged KV
/// cache walks a page list) can accumulate block by block and still produce
/// **bitwise** the contiguous result — each output element sees the exact
/// same single-accumulator ascending-row addition sequence no matter where
/// the block boundaries fall.
pub fn vecmat_acc(v: &[f32], m: &[f32], cols: usize, out: &mut [f32]) {
    assert_eq!(
        m.len(),
        v.len() * cols,
        "vecmat_acc block: [{}] @ [{}, {cols}]",
        v.len(),
        m.len() / cols.max(1)
    );
    assert_eq!(out.len(), cols, "vecmat_acc output length");
    for (&vv, m_row) in v.iter().zip(m.chunks_exact(cols)) {
        if vv == 0.0 {
            continue;
        }
        for (o, &mv) in out.iter_mut().zip(m_row) {
            *o += vv * mv;
        }
    }
}

/// Single-row transposed product `v[k] @ M[n, k]ᵀ → out[n]`: `out[j]` is the
/// dot product of `v` with row `j` of `M`. This is exactly the shape of
/// cached attention scores (`q · Kᵀ` with K stored row-per-position).
pub fn vecmat_bt(v: &[f32], m: &Tensor, out: &mut [f32]) {
    assert_eq!(m.ndim(), 2, "vecmat_bt rhs must be 2-D, got {:?}", m.shape);
    let (n, k) = (m.shape[0], m.shape[1]);
    assert_eq!(
        v.len(),
        k,
        "vecmat_bt inner dims: [{}] @ {:?}^T",
        v.len(),
        m.shape
    );
    assert_eq!(out.len(), n, "vecmat_bt output length");
    dot_rows(v, &m.data, out);
}

/// Per-row dot products over a raw row-major block: `out[r] = v · m[r, :]`
/// with row width `v.len()` and `out.len()` rows. The slice form of
/// [`vecmat_bt`], shared by the paged attention walk — every row's score is
/// an independent dot product (the same lane-strided `dot` kernel), so
/// splitting the rows across pages cannot change a single bit of any score.
pub fn dot_rows(v: &[f32], m: &[f32], out: &mut [f32]) {
    assert_eq!(
        m.len(),
        out.len() * v.len(),
        "dot_rows block: [{}, {}]",
        out.len(),
        v.len()
    );
    for (o, m_row) in out.iter_mut().zip(m.chunks_exact(v.len())) {
        *o = dot(v, m_row);
    }
}

/// Rows per register block of [`batch_matmul`]: enough that each streamed
/// weight element feeds 8 independent FMA chains, few enough that the
/// accumulator tile stays in registers.
const BM_RB: usize = 8;
/// Columns per register block of [`batch_matmul`] (one/two SIMD vectors).
const BM_JB: usize = 16;

/// Packed-rows product `X[rows, k] @ M[k, n] → out[rows, n]` — the batched
/// generalization of [`vecmat`], built for lockstep multi-request decoding
/// where the per-request activation rows are packed into one matrix.
///
/// The kernel is **register-blocked**: an `8×8` accumulator tile lives in
/// registers while `k` runs innermost, so each weight element is loaded once
/// per 8 activation rows and feeds 8 independent FMA chains (a single-row
/// `vecmat` has no such independence to exploit — its accumulators round-trip
/// through memory with a loop-carried latency on every element). That gives
/// batched decoding two structural wins over N sequential `vecmat` calls:
/// ~8× less weight traffic when the weights don't fit in cache, and several
/// times the FLOP throughput when they do.
///
/// Each output element still accumulates its `k` terms in ascending-`k`
/// order (the blocking changes *where* partial sums live, not the order they
/// are added in), so row `i` of the result is exactly
/// `vecmat(&x[i*k..(i+1)*k], m, ..)` — bitwise, not just approximately —
/// which is what lets the batched decode path promise logit equivalence with
/// the single-request engine.
///
/// Slices in, slice out: no tensor allocation on the decode hot path. The
/// kernel is deliberately serial — decode batches are a handful of rows, far
/// too little work to amortize thread spawns (contrast [`matmul`], which
/// threads across output rows above its work threshold).
pub fn batch_matmul(x: &[f32], rows: usize, m: &Tensor, out: &mut [f32]) {
    assert_eq!(
        m.ndim(),
        2,
        "batch_matmul rhs must be 2-D, got {:?}",
        m.shape
    );
    let (k, n) = (m.shape[0], m.shape[1]);
    assert_eq!(
        x.len(),
        rows * k,
        "batch_matmul lhs: [{rows}, {k}] needs {} elements, got {}",
        rows * k,
        x.len()
    );
    assert_eq!(out.len(), rows * n, "batch_matmul output length");
    let mut i0 = 0;
    while i0 + BM_RB <= rows {
        bm_row_block::<BM_RB>(
            &x[i0 * k..],
            &m.data,
            &mut out[i0 * n..(i0 + BM_RB) * n],
            k,
            n,
        );
        i0 += BM_RB;
    }
    // Row remainder: progressively smaller register blocks, then `vecmat`
    // (all accumulate in the same ascending-k order).
    if i0 + 4 <= rows {
        bm_row_block::<4>(&x[i0 * k..], &m.data, &mut out[i0 * n..(i0 + 4) * n], k, n);
        i0 += 4;
    }
    if i0 + 2 <= rows {
        bm_row_block::<2>(&x[i0 * k..], &m.data, &mut out[i0 * n..(i0 + 2) * n], k, n);
        i0 += 2;
    }
    for i in i0..rows {
        vecmat(&x[i * k..i * k + k], m, &mut out[i * n..i * n + n]);
    }
}

/// One `RB`-row stripe of [`batch_matmul`]: `x` holds the stripe's rows
/// (`RB × k`, starting at offset 0), `out` exactly `RB × n` elements.
#[inline]
fn bm_row_block<const RB: usize>(x: &[f32], m: &[f32], out: &mut [f32], k: usize, n: usize) {
    let x_rows: [&[f32]; RB] = std::array::from_fn(|r| &x[r * k..r * k + k]);
    let mut j0 = 0;
    while j0 + BM_JB <= n {
        let mut acc = [[0.0f32; BM_JB]; RB];
        for kk in 0..k {
            let w = &m[kk * n + j0..kk * n + j0 + BM_JB];
            for (r, acc_r) in acc.iter_mut().enumerate() {
                let xv = x_rows[r][kk];
                for (a, &wv) in acc_r.iter_mut().zip(w) {
                    *a += xv * wv;
                }
            }
        }
        for (r, acc_r) in acc.iter().enumerate() {
            out[r * n + j0..r * n + j0 + BM_JB].copy_from_slice(acc_r);
        }
        j0 += BM_JB;
    }
    // Column remainder: scalar accumulators, still ascending-k per element.
    for j in j0..n {
        let mut acc = [0.0f32; RB];
        for kk in 0..k {
            let wv = m[kk * n + j];
            for (a, xr) in acc.iter_mut().zip(&x_rows) {
                *a += xr[kk] * wv;
            }
        }
        for (r, &a) in acc.iter().enumerate() {
            out[r * n + j] = a;
        }
    }
}

/// [`batch_matmul`] plus a broadcast bias row: `out[i, :] = x[i, :] @ M + b`.
/// Row `i` equals a [`vecmat`]-then-add-bias sequence bitwise (same ascending
/// `k` accumulation, bias added last), matching the single-request
/// `linear_row` used by the incremental decoder.
pub fn batch_linear(x: &[f32], rows: usize, m: &Tensor, b: &Tensor, out: &mut [f32]) {
    let n = m.shape[1];
    assert_eq!(b.data.len(), n, "batch_linear bias length");
    batch_matmul(x, rows, m, out);
    for o_row in out.chunks_exact_mut(n) {
        for (o, &bv) in o_row.iter_mut().zip(&b.data) {
            *o += bv;
        }
    }
}

/// A weight matrix repacked into tile-major panels for the batched decode
/// kernels.
///
/// [`batch_matmul`]'s register-blocked loop reads a 16-column stripe of a
/// row-major `M[k, n]` with a stride of `n` floats — for serving-scale
/// matrices (`n` in the thousands) that is one cache line per `k` step at a
/// multi-KB stride, which hardware prefetchers refuse to stream, so the
/// kernel stalls on memory latency instead of running at bandwidth.
/// Packing rewrites `M` once into `[n/16]` panels of `[k, 16]` each
/// (column remainder in a final narrow panel), making every panel walk
/// perfectly sequential.
///
/// Decode weights are constant across steps, so a scheduler packs each
/// matrix once per model and reuses it for every step of every batch —
/// the one-time copy is amortized to noise. Packing changes memory layout
/// only, never accumulation order: [`batch_matmul_packed`] remains bitwise
/// equal to [`batch_matmul`] and therefore to per-row [`vecmat`].
#[derive(Debug, Clone)]
pub struct PackedMat {
    k: usize,
    n: usize,
    data: Vec<f32>,
}

impl PackedMat {
    /// Repack a row-major `[k, n]` matrix (one sequential read pass).
    pub fn pack(m: &Tensor) -> PackedMat {
        assert_eq!(m.ndim(), 2, "PackedMat wants 2-D, got {:?}", m.shape);
        let (k, n) = (m.shape[0], m.shape[1]);
        let full = n / BM_JB;
        let rem = n - full * BM_JB;
        let mut data = vec![0.0f32; k * n];
        for (kk, row) in m.data.chunks_exact(n).enumerate() {
            for jt in 0..full {
                let dst = jt * k * BM_JB + kk * BM_JB;
                data[dst..dst + BM_JB].copy_from_slice(&row[jt * BM_JB..(jt + 1) * BM_JB]);
            }
            if rem > 0 {
                let dst = full * k * BM_JB + kk * rem;
                data[dst..dst + rem].copy_from_slice(&row[full * BM_JB..]);
            }
        }
        PackedMat { k, n, data }
    }

    /// `(k, n)` of the original matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.n)
    }
}

/// [`batch_matmul`] over a pre-packed weight matrix — bitwise the same
/// result, streamed sequentially (see [`PackedMat`]).
pub fn batch_matmul_packed(x: &[f32], rows: usize, m: &PackedMat, out: &mut [f32]) {
    let (k, n) = (m.k, m.n);
    assert_eq!(
        x.len(),
        rows * k,
        "batch_matmul_packed lhs: [{rows}, {k}] needs {} elements, got {}",
        rows * k,
        x.len()
    );
    assert_eq!(out.len(), rows * n, "batch_matmul_packed output length");
    let mut i0 = 0;
    while i0 + BM_RB <= rows {
        bm_row_block_packed::<BM_RB>(&x[i0 * k..], m, &mut out[i0 * n..(i0 + BM_RB) * n]);
        i0 += BM_RB;
    }
    if i0 + 4 <= rows {
        bm_row_block_packed::<4>(&x[i0 * k..], m, &mut out[i0 * n..(i0 + 4) * n]);
        i0 += 4;
    }
    if i0 + 2 <= rows {
        bm_row_block_packed::<2>(&x[i0 * k..], m, &mut out[i0 * n..(i0 + 2) * n]);
        i0 += 2;
    }
    while i0 < rows {
        bm_row_block_packed::<1>(&x[i0 * k..], m, &mut out[i0 * n..(i0 + 1) * n]);
        i0 += 1;
    }
}

/// [`batch_matmul_packed`] plus a broadcast bias row (the packed
/// counterpart of [`batch_linear`]).
pub fn batch_linear_packed(x: &[f32], rows: usize, m: &PackedMat, b: &Tensor, out: &mut [f32]) {
    assert_eq!(b.data.len(), m.n, "batch_linear_packed bias length");
    batch_matmul_packed(x, rows, m, out);
    for o_row in out.chunks_exact_mut(m.n) {
        for (o, &bv) in o_row.iter_mut().zip(&b.data) {
            *o += bv;
        }
    }
}

/// One `RB`-row stripe over packed panels; same accumulation order as
/// `bm_row_block`, sequential panel reads.
#[inline]
fn bm_row_block_packed<const RB: usize>(x: &[f32], m: &PackedMat, out: &mut [f32]) {
    let (k, n) = (m.k, m.n);
    let x_rows: [&[f32]; RB] = std::array::from_fn(|r| &x[r * k..r * k + k]);
    let full = n / BM_JB;
    for jt in 0..full {
        let panel = &m.data[jt * k * BM_JB..(jt + 1) * k * BM_JB];
        let mut acc = [[0.0f32; BM_JB]; RB];
        for (kk, w) in panel.chunks_exact(BM_JB).enumerate() {
            for (r, acc_r) in acc.iter_mut().enumerate() {
                let xv = x_rows[r][kk];
                for (a, &wv) in acc_r.iter_mut().zip(w) {
                    *a += xv * wv;
                }
            }
        }
        for (r, acc_r) in acc.iter().enumerate() {
            out[r * n + jt * BM_JB..r * n + (jt + 1) * BM_JB].copy_from_slice(acc_r);
        }
    }
    let rem = n - full * BM_JB;
    if rem > 0 {
        let panel = &m.data[full * k * BM_JB..];
        for j in 0..rem {
            let mut acc = [0.0f32; RB];
            for kk in 0..k {
                let wv = panel[kk * rem + j];
                for (a, xr) in acc.iter_mut().zip(&x_rows) {
                    *a += xr[kk] * wv;
                }
            }
            for (r, &a) in acc.iter().enumerate() {
                out[r * n + full * BM_JB + j] = a;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape[0], a.shape[1]);
        let n = b.shape[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at2(i, kk) * b.at2(kk, j);
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    fn seq_tensor(shape: &[usize], start: f32) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(
            shape,
            (0..n)
                .map(|i| start + (i as f32) * 0.37 - (i % 7) as f32)
                .collect(),
        )
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape, b.shape);
        for (i, (x, y)) in a.data.iter().zip(&b.data).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "elem {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn small_matmul_exact() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape, vec![2, 2]);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matches_naive_various_sizes() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (8, 8, 8), (17, 13, 19), (32, 1, 32)] {
            let a = seq_tensor(&[m, k], 0.5);
            let b = seq_tensor(&[k, n], -1.25);
            assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-5);
        }
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Force through the parallel branch (m*n*k >= threshold).
        let a = seq_tensor(&[128, 64], 0.1);
        let b = seq_tensor(&[64, 64], 0.2);
        let big = matmul(&a, &b);
        assert_close(&big, &naive(&a, &b), 1e-3);
    }

    #[test]
    fn bt_equals_explicit_transpose() {
        let a = seq_tensor(&[5, 7], 0.3);
        let b = seq_tensor(&[4, 7], -0.6);
        assert_close(&matmul_bt(&a, &b), &matmul(&a, &b.transpose2()), 1e-5);
    }

    #[test]
    fn at_equals_explicit_transpose() {
        let a = seq_tensor(&[7, 5], 0.3);
        let b = seq_tensor(&[7, 4], -0.6);
        assert_close(&matmul_at(&a, &b), &matmul(&a.transpose2(), &b), 1e-5);
    }

    #[test]
    fn bt_parallel_path_matches_serial() {
        // 128×64×64 = 2^19 multiply-adds ≥ PAR_THRESHOLD → threaded branch.
        let a = seq_tensor(&[128, 64], 0.1);
        let b = seq_tensor(&[64, 64], 0.2);
        assert_close(&matmul_bt(&a, &b), &naive(&a, &b.transpose2()), 1e-3);
    }

    #[test]
    fn at_parallel_path_matches_serial() {
        let a = seq_tensor(&[64, 128], 0.1);
        let b = seq_tensor(&[64, 64], 0.2);
        assert_close(&matmul_at(&a, &b), &naive(&a.transpose2(), &b), 1e-3);
    }

    #[test]
    fn vecmat_equals_one_row_matmul() {
        let a = seq_tensor(&[1, 9], 0.4);
        let m = seq_tensor(&[9, 13], -0.2);
        let mut out = vec![0.0f32; 13];
        vecmat(&a.data, &m, &mut out);
        assert_close(&Tensor::from_vec(&[1, 13], out), &matmul(&a, &m), 1e-5);
    }

    #[test]
    fn vecmat_bt_equals_one_row_matmul_bt() {
        let a = seq_tensor(&[1, 9], 0.4);
        let m = seq_tensor(&[13, 9], -0.2);
        let mut out = vec![0.0f32; 13];
        vecmat_bt(&a.data, &m, &mut out);
        assert_close(&Tensor::from_vec(&[1, 13], out), &matmul_bt(&a, &m), 1e-5);
    }

    /// The invariant the paged KV cache rests on: accumulating a row-major
    /// block in arbitrary row-splits via `vecmat_acc` / scoring it via
    /// `dot_rows` is *bitwise* the contiguous `vecmat` / `vecmat_bt` result,
    /// wherever the split boundaries fall.
    #[test]
    fn block_split_kernels_are_bitwise_contiguous() {
        let (rows, cols) = (23usize, 16);
        let m = seq_tensor(&[rows, cols], 0.21);
        let s: Vec<f32> = (0..rows).map(|i| (i as f32 * 0.13).sin()).collect();
        let q: Vec<f32> = (0..cols).map(|i| (i as f32 * 0.71).cos()).collect();

        let mut ctx_ref = vec![0.0f32; cols];
        vecmat(&s, &m, &mut ctx_ref);
        let mut scores_ref = vec![0.0f32; rows];
        vecmat_bt(&q, &m, &mut scores_ref);

        for split in [1usize, 2, 3, 5, 16] {
            let mut ctx = vec![0.0f32; cols];
            let mut scores = vec![0.0f32; rows];
            let mut r0 = 0;
            while r0 < rows {
                let r1 = (r0 + split).min(rows);
                let block = &m.data[r0 * cols..r1 * cols];
                vecmat_acc(&s[r0..r1], block, cols, &mut ctx);
                dot_rows(&q, block, &mut scores[r0..r1]);
                r0 = r1;
            }
            assert_eq!(ctx, ctx_ref, "vecmat_acc split {split}");
            assert_eq!(scores, scores_ref, "dot_rows split {split}");
        }
    }

    #[test]
    #[should_panic(expected = "vecmat_acc block")]
    fn vecmat_acc_block_mismatch_panics() {
        let mut out = vec![0.0f32; 2];
        vecmat_acc(&[1.0, 2.0], &[0.0; 5], 2, &mut out);
    }

    #[test]
    #[should_panic(expected = "dot_rows block")]
    fn dot_rows_block_mismatch_panics() {
        let mut out = vec![0.0f32; 2];
        dot_rows(&[1.0, 2.0], &[0.0; 5], &mut out);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn vecmat_dim_mismatch_panics() {
        let mut out = vec![0.0f32; 2];
        vecmat(&[1.0, 2.0, 3.0], &Tensor::zeros(&[4, 2]), &mut out);
    }

    #[test]
    fn batch_matmul_equals_matmul() {
        for (rows, k, n) in [(1usize, 5, 7), (4, 9, 13), (8, 16, 3)] {
            let x = seq_tensor(&[rows, k], 0.4);
            let m = seq_tensor(&[k, n], -0.2);
            let mut out = vec![0.0f32; rows * n];
            batch_matmul(&x.data, rows, &m, &mut out);
            assert_close(&Tensor::from_vec(&[rows, n], out), &matmul(&x, &m), 1e-5);
        }
    }

    /// The equivalence the batched decoder relies on: every packed row is
    /// *bitwise* the single-row `vecmat` result.
    #[test]
    fn batch_matmul_rows_are_bitwise_vecmat() {
        let (rows, k, n) = (6usize, 11, 9);
        let x = seq_tensor(&[rows, k], 0.15);
        let m = seq_tensor(&[k, n], -0.85);
        let mut batched = vec![0.0f32; rows * n];
        batch_matmul(&x.data, rows, &m, &mut batched);
        let mut single = vec![0.0f32; n];
        for i in 0..rows {
            vecmat(&x.data[i * k..(i + 1) * k], &m, &mut single);
            assert_eq!(&batched[i * n..(i + 1) * n], &single[..], "row {i}");
        }
    }

    #[test]
    fn batch_linear_adds_bias_per_row() {
        let (rows, k, n) = (3usize, 4, 5);
        let x = seq_tensor(&[rows, k], 0.3);
        let m = seq_tensor(&[k, n], 0.7);
        let b = seq_tensor(&[n], -1.5);
        let mut out = vec![0.0f32; rows * n];
        batch_linear(&x.data, rows, &m, &b, &mut out);
        let plain = matmul(&x, &m);
        for i in 0..rows {
            for j in 0..n {
                let want = plain.data[i * n + j] + b.data[j];
                assert!((out[i * n + j] - want).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn packed_matmul_is_bitwise_unpacked() {
        // Shapes with and without 16-column remainders, rows hitting every
        // register-block size (8/4/2/1 paths).
        for (rows, k, n) in [
            (8usize, 16, 48),
            (6, 11, 9),
            (3, 7, 33),
            (1, 5, 16),
            (11, 8, 24),
        ] {
            let x = seq_tensor(&[rows, k], 0.25);
            let m = seq_tensor(&[k, n], -0.4);
            let packed = PackedMat::pack(&m);
            assert_eq!(packed.shape(), (k, n));
            let mut a = vec![0.0f32; rows * n];
            let mut b = vec![0.0f32; rows * n];
            batch_matmul(&x.data, rows, &m, &mut a);
            batch_matmul_packed(&x.data, rows, &packed, &mut b);
            assert_eq!(a, b, "rows={rows} k={k} n={n}");
        }
    }

    #[test]
    fn packed_linear_adds_bias() {
        let (rows, k, n) = (5usize, 6, 20);
        let x = seq_tensor(&[rows, k], 0.3);
        let m = seq_tensor(&[k, n], 0.7);
        let b = seq_tensor(&[n], -1.5);
        let packed = PackedMat::pack(&m);
        let mut a = vec![0.0f32; rows * n];
        let mut p = vec![0.0f32; rows * n];
        batch_linear(&x.data, rows, &m, &b, &mut a);
        batch_linear_packed(&x.data, rows, &packed, &b, &mut p);
        assert_eq!(a, p);
    }

    #[test]
    #[should_panic(expected = "batch_matmul lhs")]
    fn batch_matmul_dim_mismatch_panics() {
        let mut out = vec![0.0f32; 4];
        batch_matmul(&[1.0, 2.0, 3.0], 2, &Tensor::zeros(&[2, 2]), &mut out);
    }

    #[test]
    fn identity_is_neutral() {
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            eye.data[i * 4 + i] = 1.0;
        }
        let a = seq_tensor(&[4, 4], 2.0);
        assert_close(&matmul(&a, &eye), &a, 0.0);
        assert_close(&matmul(&eye, &a), &a, 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn dim_mismatch_panics() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }
}
