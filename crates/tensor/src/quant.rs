//! Int8 per-channel weight quantization — the memory-bandwidth lever for
//! the decode hot path.
//!
//! Every decode step streams the full decoder weight set through
//! [`vecmat`](crate::vecmat) / [`batch_matmul_packed`](crate::batch_matmul_packed);
//! at serving model sizes those reads are the step's cost. [`QuantMat`]
//! stores a weight matrix as **symmetric per-output-channel int8**: column
//! `j` of a row-major `M[k, n]` (one output channel) is scaled by
//! `s_j = max|M[:, j]| / 127` and rounded to `i8`, shrinking weight traffic
//! 4× — which is the whole speedup on a memory-bound step.
//!
//! The quantized kernels are **W8A8 with dynamic activation quantization**:
//! the activation row is quantized per call (one symmetric scale for the
//! row, [`quantize_row`]), the dot products accumulate in `i32` — exact
//! integer arithmetic, no rounding until the very end — and each output is
//! dequantized **once** by `acc · s_v · s_j`.
//!
//! # Layout
//!
//! `QuantMat` packs its `i8` data into the same tile-major panels as
//! [`PackedMat`](crate::PackedMat): `[n/16]` panels of `[k, 16]` (column
//! remainder in a final narrow panel), so the kernels stream the weights
//! perfectly sequentially.
//!
//! # Determinism across batching and storage
//!
//! Integer addition is associative, so the `i32` accumulator is **order
//! invariant**: however the kernel blocks its loops, `acc_j` is the exact
//! sum `Σ_k q_v[k]·q_m[k][j]`, and the dequantized output is the exact
//! expression `(acc as f32) * s_v * s_j`. [`batch_matmul_q`] is therefore
//! bitwise-equal to per-row [`vecmat_q`] *by construction* — there is no
//! accumulation-order argument to make, unlike the f32 kernels — which is
//! what lets the quantized batched decode path promise bitwise logit
//! equivalence with the quantized single-request path.
//!
//! # Error bound
//!
//! Per channel, quantization error is rigorously bounded by the scales:
//! weight error per element is ≤ `s_j/2`, activation error per element
//! ≤ `s_v/2`, so
//!
//! ```text
//! |vecmat_q(v, M)_j − (v @ M)_j|
//!     ≤ (s_j/2)·‖v‖₁ + (s_v/2)·‖M̂[:, j]‖₁ + k·(s_v/2)·(s_j/2)
//! ```
//!
//! where `M̂` is the dequantized matrix. [`QuantMat::channel_error_bound`]
//! evaluates this bound for a given activation row; the property suite in
//! `tests/quant_props.rs` and the accuracy harness in
//! `tests/quant_accuracy.rs` enforce it.

use crate::tensor::Tensor;

/// Columns per packed panel (matches `PackedMat`'s tile width — one/two
/// SIMD vectors of `i32` accumulators).
const QM_JB: usize = 16;

/// Largest inner dimension the `i32` accumulator provably cannot overflow
/// at: `k · 127 · 127 ≤ i32::MAX`.
const MAX_K: usize = (i32::MAX / (127 * 127)) as usize;

/// A weight matrix quantized to symmetric per-output-channel int8, packed
/// into tile-major panels for sequential streaming (see module docs).
#[derive(Debug, Clone)]
pub struct QuantMat {
    k: usize,
    n: usize,
    /// Tile-major `i8` panels: `[n/16]` panels of `[k, 16]`, remainder
    /// columns in a final `[k, n%16]` panel.
    data: Vec<i8>,
    /// Per-output-channel dequantization scales (`len == n`).
    scales: Vec<f32>,
}

impl QuantMat {
    /// Quantize a row-major `[k, n]` f32 matrix: per column `j`,
    /// `s_j = max|M[:, j]| / 127` (`1.0` for an all-zero column, so zeros
    /// stay exactly zero) and `q = round(M[:, j] / s_j)` — round half away
    /// from zero, clamped to `[-127, 127]`.
    ///
    /// # Panics
    ///
    /// If the matrix is not 2-D, or `k` is large enough that the `i32`
    /// accumulator could overflow (`k > i32::MAX / 127²` — far beyond any
    /// transformer projection).
    pub fn quantize(m: &Tensor) -> QuantMat {
        assert_eq!(m.ndim(), 2, "QuantMat wants 2-D, got {:?}", m.shape);
        let (k, n) = (m.shape[0], m.shape[1]);
        assert!(
            k <= MAX_K,
            "inner dim {k} could overflow the i32 accumulator (max {MAX_K})"
        );
        let mut amax = vec![0.0f32; n];
        for row in m.data.chunks_exact(n) {
            for (a, &v) in amax.iter_mut().zip(row) {
                *a = a.max(v.abs());
            }
        }
        let scales: Vec<f32> = amax
            .iter()
            .map(|&a| if a == 0.0 { 1.0 } else { a / 127.0 })
            .collect();
        let full = n / QM_JB;
        let rem = n - full * QM_JB;
        let mut data = vec![0i8; k * n];
        for (kk, row) in m.data.chunks_exact(n).enumerate() {
            let quant = |j: usize| {
                let q = (row[j] / scales[j]).round();
                q.clamp(-127.0, 127.0) as i8
            };
            for jt in 0..full {
                let dst = jt * k * QM_JB + kk * QM_JB;
                for (o, j) in (jt * QM_JB..(jt + 1) * QM_JB).enumerate() {
                    data[dst + o] = quant(j);
                }
            }
            if rem > 0 {
                let dst = full * k * QM_JB + kk * rem;
                for (o, j) in (full * QM_JB..n).enumerate() {
                    data[dst + o] = quant(j);
                }
            }
        }
        QuantMat { k, n, data, scales }
    }

    /// `(k, n)` of the original matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.n)
    }

    /// Per-output-channel scales (`len == n`).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Quantized weight of element `(kk, j)` (panel-indexed lookup; test
    /// and reference-implementation helper, not a hot path).
    pub fn q_at(&self, kk: usize, j: usize) -> i8 {
        let full = self.n / QM_JB;
        let rem = self.n - full * QM_JB;
        let jt = j / QM_JB;
        if jt < full {
            self.data[jt * self.k * QM_JB + kk * QM_JB + (j - jt * QM_JB)]
        } else {
            self.data[full * self.k * QM_JB + kk * rem + (j - full * QM_JB)]
        }
    }

    /// Reconstruct the dequantized row-major matrix `M̂[kk, j] = q·s_j`.
    /// Per element, `|M − M̂| ≤ s_j / 2` (the round-trip property).
    pub fn dequantize(&self) -> Tensor {
        let mut out = vec![0.0f32; self.k * self.n];
        for kk in 0..self.k {
            for j in 0..self.n {
                out[kk * self.n + j] = self.q_at(kk, j) as f32 * self.scales[j];
            }
        }
        Tensor::from_vec(&[self.k, self.n], out)
    }

    /// Worst-case per-channel error bound of [`vecmat_q`] against the exact
    /// f32 product, for activation row `v` (see module docs for the
    /// derivation):
    ///
    /// `bound_j = (s_j/2)·‖v‖₁ + (s_v/2)·‖M̂[:, j]‖₁ + k·(s_v/2)·(s_j/2)`
    pub fn channel_error_bound(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.k, "activation length");
        let v_amax = v.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
        let sv_half = if v_amax == 0.0 { 0.5 } else { v_amax / 254.0 };
        let v_l1: f32 = v.iter().map(|x| x.abs()).sum();
        (0..self.n)
            .map(|j| {
                let col_l1: f32 = (0..self.k)
                    .map(|kk| (self.q_at(kk, j) as f32 * self.scales[j]).abs())
                    .sum();
                let sj_half = self.scales[j] / 2.0;
                sj_half * v_l1 + sv_half * col_l1 + self.k as f32 * sv_half * sj_half
            })
            .collect()
    }
}

/// Symmetric dynamic quantization of one activation row: `s_v =
/// max|v| / 127` (`1.0` when the row is all zeros), `q = round(v / s_v)`
/// clamped to `[-127, 127]`. Returns `s_v`. Shared by every quantized
/// kernel, single-row and batched, so a given row always quantizes to the
/// same bits.
pub fn quantize_row(v: &[f32], q: &mut [i8]) -> f32 {
    assert_eq!(v.len(), q.len(), "quantize_row buffer length");
    let amax = v.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
    let scale = if amax == 0.0 { 1.0 } else { amax / 127.0 };
    let inv = 1.0 / scale;
    for (o, &x) in q.iter_mut().zip(v) {
        *o = (x * inv).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

/// `i32` accumulation of one full-width panel: `acc[j] = Σ_k q[k] ·
/// panel[k][j]` over a `[k, 16]` i8 panel.
///
/// The multiplies stay 16-bit: i8·i8 products fit i16 exactly (|q| ≤ 127
/// ⇒ |product| ≤ 16129 < 2¹⁵), so SIMD gets one `pmullw` instead of
/// widening both operands to i32 first, and only the accumulate widens.
/// Blocking choices here are unobservable: integer addition is
/// associative, so `acc` is the exact sum regardless (the
/// order-invariance the module docs lean on).
#[inline]
fn panel_accumulate(q: &[i8], panel: &[i8]) -> [i32; QM_JB] {
    let mut acc = [0i32; QM_JB];
    for (kk, w) in panel.chunks_exact(QM_JB).enumerate() {
        let qv = q[kk] as i16;
        for (a, &wv) in acc.iter_mut().zip(w) {
            *a += (qv * wv as i16) as i32;
        }
    }
    acc
}

/// Quantized single-row product over a pre-quantized activation:
/// `out[j] = (Σ_k q[k]·q_m[k][j]) · v_scale · s_j`, the `i32` sum exact,
/// the two dequantization multiplies applied left to right. Slices in,
/// slice out — no allocation on the decode hot path (the caller owns the
/// `i8` scratch via [`quantize_row`]).
pub fn vecmat_q_pre(q: &[i8], v_scale: f32, m: &QuantMat, out: &mut [f32]) {
    let (k, n) = (m.k, m.n);
    assert_eq!(
        q.len(),
        k,
        "vecmat_q inner dims: [{}] @ [{k}, {n}]",
        q.len()
    );
    assert_eq!(out.len(), n, "vecmat_q output length");
    let full = n / QM_JB;
    for jt in 0..full {
        let panel = &m.data[jt * k * QM_JB..(jt + 1) * k * QM_JB];
        let acc = panel_accumulate(q, panel);
        for (o, (&a, &s)) in out[jt * QM_JB..(jt + 1) * QM_JB]
            .iter_mut()
            .zip(acc.iter().zip(&m.scales[jt * QM_JB..(jt + 1) * QM_JB]))
        {
            *o = a as f32 * v_scale * s;
        }
    }
    let rem = n - full * QM_JB;
    if rem > 0 {
        let panel = &m.data[full * k * QM_JB..];
        for j in 0..rem {
            let mut a = 0i32;
            for (kk, &qv) in q.iter().enumerate() {
                a += qv as i32 * panel[kk * rem + j] as i32;
            }
            out[full * QM_JB + j] = a as f32 * v_scale * m.scales[full * QM_JB + j];
        }
    }
}

/// Quantized single-row product `v[k] @ M̂[k, n] → out[n]`: quantizes the
/// activation (one allocation) then runs [`vecmat_q_pre`]. Convenience
/// form for tests and one-off calls; hot paths pre-quantize into reusable
/// scratch instead.
pub fn vecmat_q(v: &[f32], m: &QuantMat, out: &mut [f32]) {
    let mut q = vec![0i8; v.len()];
    let scale = quantize_row(v, &mut q);
    vecmat_q_pre(&q, scale, m, out);
}

/// Quantized packed-rows product `X[rows, k] @ M̂ → out[rows, n]`: each
/// activation row is quantized with [`quantize_row`] (into the caller's
/// scratch — `q` holds `rows·k` i8, `row_scales` `rows` f32) and
/// accumulated in `i32`. The panel loop is outermost so each weight panel
/// is read once per **step** and reused across all rows from cache — the
/// same streaming win [`batch_matmul_packed`](crate::batch_matmul_packed)
/// gets — but because integer accumulation is order-invariant, every
/// output row is **bitwise** `vecmat_q` of that row regardless of the
/// blocking (no accumulation-order caveats).
pub fn batch_matmul_q(
    x: &[f32],
    rows: usize,
    m: &QuantMat,
    q: &mut [i8],
    row_scales: &mut [f32],
    out: &mut [f32],
) {
    let (k, n) = (m.k, m.n);
    assert_eq!(
        x.len(),
        rows * k,
        "batch_matmul_q lhs: [{rows}, {k}] needs {} elements, got {}",
        rows * k,
        x.len()
    );
    assert!(q.len() >= rows * k, "batch_matmul_q i8 scratch too small");
    assert!(
        row_scales.len() >= rows,
        "batch_matmul_q scale scratch too small"
    );
    assert_eq!(out.len(), rows * n, "batch_matmul_q output length");
    for (r, row) in x.chunks_exact(k).enumerate() {
        row_scales[r] = quantize_row(row, &mut q[r * k..(r + 1) * k]);
    }
    let full = n / QM_JB;
    for jt in 0..full {
        let panel = &m.data[jt * k * QM_JB..(jt + 1) * k * QM_JB];
        let scales = &m.scales[jt * QM_JB..(jt + 1) * QM_JB];
        for r in 0..rows {
            let qr = &q[r * k..(r + 1) * k];
            let acc = panel_accumulate(qr, panel);
            for (o, (&a, &s)) in out[r * n + jt * QM_JB..r * n + (jt + 1) * QM_JB]
                .iter_mut()
                .zip(acc.iter().zip(scales))
            {
                *o = a as f32 * row_scales[r] * s;
            }
        }
    }
    let rem = n - full * QM_JB;
    if rem > 0 {
        let panel = &m.data[full * k * QM_JB..];
        for r in 0..rows {
            let qr = &q[r * k..(r + 1) * k];
            for j in 0..rem {
                let mut a = 0i32;
                for (kk, &qv) in qr.iter().enumerate() {
                    a += qv as i32 * panel[kk * rem + j] as i32;
                }
                out[r * n + full * QM_JB + j] =
                    a as f32 * row_scales[r] * m.scales[full * QM_JB + j];
            }
        }
    }
}

/// [`batch_matmul_q`] plus a broadcast bias row (bias added last, in f32 —
/// the quantized counterpart of
/// [`batch_linear_packed`](crate::batch_linear_packed)).
#[allow(clippy::too_many_arguments)]
pub fn batch_linear_q(
    x: &[f32],
    rows: usize,
    m: &QuantMat,
    b: &Tensor,
    q: &mut [i8],
    row_scales: &mut [f32],
    out: &mut [f32],
) {
    assert_eq!(b.data.len(), m.n, "batch_linear_q bias length");
    batch_matmul_q(x, rows, m, q, row_scales, out);
    for o_row in out.chunks_exact_mut(m.n) {
        for (o, &bv) in o_row.iter_mut().zip(&b.data) {
            *o += bv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::vecmat;

    fn seq_tensor(shape: &[usize], start: f32) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(
            shape,
            (0..n)
                .map(|i| start + (i as f32) * 0.37 - (i % 7) as f32)
                .collect(),
        )
    }

    #[test]
    fn roundtrip_error_within_half_scale_per_channel() {
        for (k, n) in [(5usize, 7usize), (16, 16), (11, 33), (1, 1)] {
            let m = seq_tensor(&[k, n], 0.3);
            let qm = QuantMat::quantize(&m);
            assert_eq!(qm.shape(), (k, n));
            let deq = qm.dequantize();
            for kk in 0..k {
                for j in 0..n {
                    let e = (m.data[kk * n + j] - deq.data[kk * n + j]).abs();
                    assert!(
                        e <= qm.scales()[j] / 2.0 + f32::EPSILON,
                        "({kk},{j}): err {e} vs scale {}",
                        qm.scales()[j]
                    );
                }
            }
        }
    }

    #[test]
    fn zero_weights_and_activations_stay_exactly_zero() {
        let mut m = seq_tensor(&[6, 20], 0.4);
        // Zero out one full column and a few scattered elements.
        for kk in 0..6 {
            m.data[kk * 20 + 3] = 0.0;
        }
        m.data[2 * 20 + 7] = 0.0;
        let qm = QuantMat::quantize(&m);
        let deq = qm.dequantize();
        for kk in 0..6 {
            assert_eq!(deq.data[kk * 20 + 3], 0.0, "zero column preserved");
        }
        assert_eq!(deq.data[2 * 20 + 7], 0.0, "scattered zero preserved");
        // An all-zero activation row quantizes to zeros with scale 1.
        let mut q = vec![7i8; 6];
        let s = quantize_row(&[0.0; 6], &mut q);
        assert_eq!(s, 1.0);
        assert!(q.iter().all(|&b| b == 0));
        let mut out = vec![1.0f32; 20];
        vecmat_q(&[0.0; 6], &qm, &mut out);
        assert!(out.iter().all(|&v| v == 0.0), "0 @ M is exactly 0");
    }

    /// Scalar reference of the quantized product: the exact semantics
    /// every kernel must match bitwise.
    fn reference_q(v: &[f32], m: &QuantMat) -> Vec<f32> {
        let (k, n) = m.shape();
        let mut q = vec![0i8; k];
        let vs = quantize_row(v, &mut q);
        (0..n)
            .map(|j| {
                let mut acc = 0i32;
                for (kk, &qv) in q.iter().enumerate() {
                    acc += qv as i32 * m.q_at(kk, j) as i32;
                }
                acc as f32 * vs * m.scales()[j]
            })
            .collect()
    }

    #[test]
    fn vecmat_q_is_bitwise_scalar_reference() {
        for (k, n) in [(9usize, 13usize), (16, 16), (32, 48), (7, 5), (24, 17)] {
            let m = seq_tensor(&[k, n], -0.8);
            let qm = QuantMat::quantize(&m);
            let v: Vec<f32> = (0..k).map(|i| (i as f32 * 0.31).sin() * 2.0).collect();
            let mut out = vec![0.0f32; n];
            vecmat_q(&v, &qm, &mut out);
            assert_eq!(out, reference_q(&v, &qm), "k={k} n={n}");
        }
    }

    #[test]
    fn batch_rows_are_bitwise_vecmat_q() {
        let (rows, k, n) = (5usize, 12, 37);
        let x = seq_tensor(&[rows, k], 0.2);
        let m = seq_tensor(&[k, n], -0.5);
        let qm = QuantMat::quantize(&m);
        let mut q = vec![0i8; rows * k];
        let mut scales = vec![0.0f32; rows];
        let mut batched = vec![0.0f32; rows * n];
        batch_matmul_q(&x.data, rows, &qm, &mut q, &mut scales, &mut batched);
        let mut single = vec![0.0f32; n];
        for r in 0..rows {
            vecmat_q(&x.data[r * k..(r + 1) * k], &qm, &mut single);
            assert_eq!(&batched[r * n..(r + 1) * n], &single[..], "row {r}");
        }
    }

    #[test]
    fn batch_linear_q_adds_bias_last() {
        let (rows, k, n) = (3usize, 8, 21);
        let x = seq_tensor(&[rows, k], 0.6);
        let m = seq_tensor(&[k, n], 0.9);
        let b = seq_tensor(&[n], -1.1);
        let qm = QuantMat::quantize(&m);
        let mut q = vec![0i8; rows * k];
        let mut scales = vec![0.0f32; rows];
        let mut with_bias = vec![0.0f32; rows * n];
        batch_linear_q(&x.data, rows, &qm, &b, &mut q, &mut scales, &mut with_bias);
        let mut plain = vec![0.0f32; rows * n];
        batch_matmul_q(&x.data, rows, &qm, &mut q, &mut scales, &mut plain);
        for r in 0..rows {
            for j in 0..n {
                assert_eq!(with_bias[r * n + j], plain[r * n + j] + b.data[j]);
            }
        }
    }

    #[test]
    fn error_against_f32_within_channel_bound() {
        for (k, n) in [(16usize, 33usize), (64, 48), (128, 16)] {
            let m = seq_tensor(&[k, n], 0.15);
            let qm = QuantMat::quantize(&m);
            let v: Vec<f32> = (0..k).map(|i| (i as f32 * 0.47).cos() * 1.5).collect();
            let mut exact = vec![0.0f32; n];
            vecmat(&v, &m, &mut exact);
            let mut quant = vec![0.0f32; n];
            vecmat_q(&v, &qm, &mut quant);
            let bound = qm.channel_error_bound(&v);
            for j in 0..n {
                let e = (exact[j] - quant[j]).abs();
                assert!(
                    e <= bound[j] * (1.0 + 1e-5),
                    "k={k} n={n} channel {j}: err {e} vs bound {}",
                    bound[j]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn dim_mismatch_panics() {
        let qm = QuantMat::quantize(&seq_tensor(&[4, 2], 0.0));
        let mut out = vec![0.0f32; 2];
        vecmat_q(&[1.0, 2.0, 3.0], &qm, &mut out);
    }
}
