//! Dense row-major `f32` tensor.
//!
//! Shapes are small `Vec<usize>`; data is contiguous. All autograd ops build
//! on the methods here; the hot path (matmul) lives in [`mod@crate::matmul`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major, contiguous `f32` tensor.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    pub shape: Vec<usize>,
    pub data: Vec<f32>,
}

impl Tensor {
    /// All-zeros tensor.
    pub fn zeros(shape: &[usize]) -> Tensor {
        let numel = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; numel],
        }
    }

    /// All-ones tensor.
    pub fn ones(shape: &[usize]) -> Tensor {
        let numel = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![1.0; numel],
        }
    }

    /// Filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Tensor {
        let numel = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; numel],
        }
    }

    /// Build from raw parts; panics if the element count mismatches.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {shape:?} incompatible with {} elements",
            data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// 1-element scalar tensor.
    pub fn scalar(v: f32) -> Tensor {
        Tensor {
            shape: vec![1],
            data: vec![v],
        }
    }

    /// Number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Dimension `i` (panics when out of range).
    #[inline]
    pub fn dim(&self, i: usize) -> usize {
        self.shape[i]
    }

    /// The last dimension.
    #[inline]
    pub fn last_dim(&self) -> usize {
        *self.shape.last().expect("tensor has at least one dim")
    }

    /// Number of rows when viewed as a 2-D `[rows, last_dim]` matrix.
    #[inline]
    pub fn rows_2d(&self) -> usize {
        self.numel() / self.last_dim()
    }

    /// The scalar value of a 1-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() on non-scalar {:?}", self.shape);
        self.data[0]
    }

    /// 2-D indexing (row-major).
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.ndim(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Reshape without copying; panics if numel differs.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.numel(),
            "reshape {:?} -> {shape:?}",
            self.shape
        );
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise zip; shapes must match exactly.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self + other`, exact shapes.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// `self - other`, exact shapes.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise product, exact shapes.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Scalar multiply.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place accumulate: `self += other` (exact shapes).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scale.
    pub fn scale_assign(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Broadcast-add a `[last_dim]` vector over all rows (bias add).
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        let d = self.last_dim();
        assert_eq!(bias.numel(), d, "bias length mismatch");
        let mut out = self.clone();
        for row in out.data.chunks_mut(d) {
            for (x, b) in row.iter_mut().zip(&bias.data) {
                *x += b;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.numel() as f32
        }
    }

    /// Max element (−∞ for empty).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Sum over rows: `[R, C] → [C]`.
    pub fn sum_rows(&self) -> Tensor {
        let d = self.last_dim();
        let mut out = vec![0.0f32; d];
        for row in self.data.chunks(d) {
            for (o, x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
        Tensor::from_vec(&[d], out)
    }

    /// Transpose a 2-D tensor.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose2 needs 2-D, got {:?}", self.shape);
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor::from_vec(&[c, r], out)
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Row-wise softmax over the last dimension, numerically stabilized.
    pub fn softmax_lastdim(&self) -> Tensor {
        let d = self.last_dim();
        let mut out = self.clone();
        for row in out.data.chunks_mut(d) {
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0f32;
            for x in row.iter_mut() {
                *x = (*x - m).exp();
                z += *x;
            }
            let inv = 1.0 / z.max(1e-30);
            for x in row.iter_mut() {
                *x *= inv;
            }
        }
        out
    }

    /// Argmax per row: `[R, C] → Vec<usize>` of length R.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let d = self.last_dim();
        self.data
            .chunks(d)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.numel() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, … ({} elems)]",
                self.data[0],
                self.data[1],
                self.numel()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.ndim(), 2);
        assert_eq!(t.dim(1), 3);
        assert_eq!(t.last_dim(), 3);
        assert_eq!(t.rows_2d(), 2);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn from_vec_checks_shape() {
        Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(&[2, 2], vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(a.add(&b).data, vec![11.0, 22.0, 33.0, 44.0]);
        assert_eq!(b.sub(&a).data, vec![9.0, 18.0, 27.0, 36.0]);
        assert_eq!(a.mul(&b).data, vec![10.0, 40.0, 90.0, 160.0]);
        assert_eq!(a.scale(2.0).data, vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn broadcast_bias() {
        let x = Tensor::from_vec(&[2, 3], vec![0.0; 6]);
        let b = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.data, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.sum_rows().data, vec![4.0, 6.0]);
        assert_eq!(a.norm_sq(), 30.0);
    }

    #[test]
    fn transpose() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose2();
        assert_eq!(t.shape, vec![3, 2]);
        assert_eq!(t.data, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(t.transpose2(), a, "double transpose is identity");
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = a.softmax_lastdim();
        for row in s.data.chunks(3) {
            let z: f32 = row.iter().sum();
            assert!((z - 1.0).abs() < 1e-6);
            assert!(row.windows(2).all(|w| w[0] < w[1]), "monotone in logits");
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let a = Tensor::from_vec(&[1, 3], vec![1000.0, 1001.0, 1002.0]);
        let s = a.softmax_lastdim();
        assert!(s.all_finite());
        assert!((s.data.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn argmax() {
        let a = Tensor::from_vec(&[2, 3], vec![0.1, 0.9, 0.0, 5.0, -1.0, 2.0]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(&[2, 3], (0..6).map(|x| x as f32).collect());
        let b = a.reshape(&[3, 2]);
        assert_eq!(b.shape, vec![3, 2]);
        assert_eq!(b.data, a.data);
    }

    #[test]
    fn item_and_scalar() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }

    #[test]
    fn finite_check() {
        let mut a = Tensor::ones(&[3]);
        assert!(a.all_finite());
        a.data[1] = f32::NAN;
        assert!(!a.all_finite());
    }
}
