//! Weight initialization.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Normal-distributed tensor with mean 0 and the given standard deviation
/// (Box–Muller over the provided RNG, so it is seed-stable).
pub fn normal(shape: &[usize], std: f32, rng: &mut StdRng) -> Tensor {
    let n: usize = shape.iter().product();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(1e-7f32..1.0);
        let u2: f32 = rng.gen_range(0.0f32..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(shape, data)
}

/// Xavier/Glorot uniform: `U(−a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
/// For 2-D shapes fan_in/fan_out are the dims; for 1-D both equal the length.
pub fn xavier_uniform(shape: &[usize], rng: &mut StdRng) -> Tensor {
    let (fan_in, fan_out) = match shape {
        [n] => (*n, *n),
        [r, c] => (*r, *c),
        other => {
            let n: usize = other.iter().product();
            (n, n)
        }
    };
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(-a..a)).collect();
    Tensor::from_vec(shape, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_statistics() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = normal(&[10_000], 2.0, &mut rng);
        let mean = t.mean();
        let var = t.data.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = xavier_uniform(&[64, 64], &mut rng);
        let a = (6.0f32 / 128.0).sqrt();
        assert!(t.data.iter().all(|x| x.abs() <= a));
        assert!(t.data.iter().any(|x| x.abs() > a * 0.5), "spread out");
    }

    #[test]
    fn deterministic_for_seed() {
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        assert_eq!(normal(&[16], 1.0, &mut r1), normal(&[16], 1.0, &mut r2));
    }

    #[test]
    fn odd_length_normal() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = normal(&[7], 1.0, &mut rng);
        assert_eq!(t.numel(), 7);
    }
}
