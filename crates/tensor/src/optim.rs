//! Parameter storage and the Adam optimizer.
//!
//! [`ParamStore`] owns every trainable tensor plus its Adam moment buffers;
//! parameters are addressed by stable [`ParamId`]s handed out at
//! registration. Tapes borrow the store read-only during the forward pass,
//! so data-parallel workers can share one store across threads without
//! locks; only the optimizer step mutates it.

use crate::autograd::Grads;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Stable handle to a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub usize);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Slot {
    name: String,
    value: Tensor,
    m: Tensor,
    v: Tensor,
}

/// Container of all trainable parameters of a model.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    slots: Vec<Slot>,
    #[serde(skip)]
    by_name: HashMap<String, usize>,
}

impl ParamStore {
    pub fn new() -> ParamStore {
        ParamStore::default()
    }

    /// Register a parameter; names must be unique.
    pub fn add(&mut self, name: &str, value: Tensor) -> ParamId {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate parameter name {name}"
        );
        let m = Tensor::zeros(&value.shape);
        let v = Tensor::zeros(&value.shape);
        self.slots.push(Slot {
            name: name.to_string(),
            value,
            m,
            v,
        });
        let id = ParamId(self.slots.len() - 1);
        self.by_name.insert(name.to_string(), id.0);
        id
    }

    /// Number of parameters (tensors).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total scalar parameter count.
    pub fn num_scalars(&self) -> usize {
        self.slots.iter().map(|s| s.value.numel()).sum()
    }

    /// Value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.slots[id.0].value
    }

    /// Mutable value (tests / manual surgery).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.slots[id.0].value
    }

    /// Look up a parameter id by name.
    pub fn id_of(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).map(|&i| ParamId(i))
    }

    /// Name of a parameter.
    pub fn name_of(&self, id: ParamId) -> &str {
        &self.slots[id.0].name
    }

    /// All ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.slots.len()).map(ParamId)
    }

    /// Rebuild the name index after deserialization (serde skips it).
    /// Callers that deserialize a `ParamStore` (e.g. the model crate's
    /// checkpoint loader) must invoke this before using `id_of`.
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.clone(), i))
            .collect();
    }
}

#[cfg(test)]
mod store_tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::ones(&[2, 3]));
        assert_eq!(s.len(), 1);
        assert_eq!(s.num_scalars(), 6);
        assert_eq!(s.id_of("w"), Some(id));
        assert_eq!(s.name_of(id), "w");
        assert_eq!(s.value(id).data, vec![1.0; 6]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_name_panics() {
        let mut s = ParamStore::new();
        s.add("w", Tensor::ones(&[1]));
        s.add("w", Tensor::ones(&[1]));
    }
}

/// Adam with optional decoupled weight decay (AdamW when `weight_decay > 0`)
/// and linear warmup followed by inverse-sqrt decay — the schedule family
/// used by Transformer training since Vaswani et al.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    /// Warmup steps for the schedule; `0` disables scheduling (constant lr).
    pub warmup: usize,
    /// Step counter (1-based after the first step).
    pub t: usize,
}

impl Default for Adam {
    fn default() -> Self {
        Adam {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            warmup: 0,
            t: 0,
        }
    }
}

impl Adam {
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            ..Default::default()
        }
    }

    /// Effective learning rate at the *next* step.
    pub fn effective_lr(&self) -> f32 {
        let t = (self.t + 1) as f32;
        if self.warmup == 0 {
            self.lr
        } else {
            let w = self.warmup as f32;
            self.lr * (t / w).min((w / t).sqrt()).min(1.0)
        }
    }

    /// Apply one optimizer step with the given (summed) gradients.
    /// Parameters without a gradient are untouched.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Grads) {
        let lr = self.effective_lr();
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, slot) in store.slots.iter_mut().enumerate() {
            let Some(g) = grads.by_param.get(i).and_then(|g| g.as_ref()) else {
                continue;
            };
            assert_eq!(
                g.shape, slot.value.shape,
                "gradient shape mismatch for {}",
                slot.name
            );
            for j in 0..g.data.len() {
                let gj = g.data[j];
                slot.m.data[j] = self.beta1 * slot.m.data[j] + (1.0 - self.beta1) * gj;
                slot.v.data[j] = self.beta2 * slot.v.data[j] + (1.0 - self.beta2) * gj * gj;
                let mhat = slot.m.data[j] / bc1;
                let vhat = slot.v.data[j] / bc2;
                let mut update = lr * mhat / (vhat.sqrt() + self.eps);
                if self.weight_decay > 0.0 {
                    update += lr * self.weight_decay * slot.value.data[j];
                }
                slot.value.data[j] -= update;
            }
        }
    }
}

#[cfg(test)]
mod adam_tests {
    use super::*;
    use crate::autograd::Tape;

    /// Minimize ‖x − target‖² with Adam; must converge.
    #[test]
    fn adam_minimizes_quadratic() {
        let mut store = ParamStore::new();
        let x = store.add("x", Tensor::from_vec(&[3], vec![5.0, -3.0, 2.0]));
        let target = Tensor::from_vec(&[3], vec![1.0, 1.0, 1.0]);
        let mut adam = Adam::new(0.05);
        let mut last = f32::INFINITY;
        for _ in 0..400 {
            let mut tape = Tape::new();
            let xv = tape.param(&store, x);
            let t = tape.constant(target.scale(-1.0));
            let diff = tape.add(xv, t);
            let sq = tape.mul(diff, diff);
            let loss = tape.mean_all(sq);
            last = tape.value(loss).item();
            let grads = tape.backward(loss);
            adam.step(&mut store, &grads);
        }
        assert!(last < 1e-4, "loss {last} did not converge");
        for &v in &store.value(x).data {
            assert!((v - 1.0).abs() < 0.05, "x = {v}");
        }
    }

    #[test]
    fn warmup_schedule_shape() {
        let mut adam = Adam::new(1.0);
        adam.warmup = 10;
        let mut lrs = Vec::new();
        for _ in 0..30 {
            lrs.push(adam.effective_lr());
            adam.t += 1;
        }
        // Rises during warmup…
        assert!(lrs[0] < lrs[5] && lrs[5] < lrs[9]);
        // …peaks at warmup…
        assert!((lrs[9] - 1.0).abs() < 1e-6);
        // …then decays.
        assert!(lrs[15] < lrs[10]);
        assert!(lrs[29] < lrs[15]);
    }

    #[test]
    fn step_skips_gradient_free_params() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::ones(&[2]));
        let b = store.add("b", Tensor::ones(&[2]));
        let grads = Grads {
            by_param: vec![Some(Tensor::from_vec(&[2], vec![1.0, 1.0])), None],
        };
        let mut adam = Adam::new(0.1);
        adam.step(&mut store, &grads);
        assert_ne!(store.value(a).data, vec![1.0, 1.0]);
        assert_eq!(store.value(b).data, vec![1.0, 1.0]);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::full(&[1], 10.0));
        let grads = Grads {
            by_param: vec![Some(Tensor::zeros(&[1]))],
        };
        let mut adam = Adam::new(0.1);
        adam.weight_decay = 0.5;
        let before = store.value(a).data[0];
        adam.step(&mut store, &grads);
        assert!(store.value(a).data[0] < before);
    }
}
