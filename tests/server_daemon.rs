//! Loopback integration suite for the `mpirical-server` daemon: real TCP
//! sockets against an in-process server, checked **against the in-process
//! `SuggestService` reference** — the wire must add transport, never
//! change results.
//!
//! The acceptance pins (ISSUE 10):
//!
//! * (a) responses over the wire are **bitwise identical** (serialized
//!   suggestion + parse-health payloads compared as JSON strings) to the
//!   inline in-process reference, for f32 **and** int8 artifacts, under
//!   concurrent clients;
//! * (b) submissions past the admission budget receive a typed `Busy`
//!   and are *not* queued;
//! * (c) `Drain` completes all in-flight work, parks unredeemed results
//!   for late polls, and reports a final pool with **zero live pages**;
//! * (d) a malformed frame terminates only its own connection while a
//!   concurrent well-formed session completes normally;
//!
//! plus submit/cancel/poll races and reconnect-and-repoll by raw id. The
//! `smoke_sixteen_concurrent_clients_stats_and_drain` test is re-run by CI
//! in release mode as the serving smoke.

use mpirical::corpus::{generate_dataset, CorpusConfig};
use mpirical::cparse::ParseHealth;
use mpirical::model::{DecodeOptions, ModelConfig, Precision};
use mpirical::{MpiRical, MpiRicalConfig, SubmitOptions, SuggestPoll, SuggestService, Suggestion};
use mpirical_server::{write_frame, Client, Server, ServerConfig, Submitted};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};

/// Train once for the whole suite (training dominates wall-clock); tests
/// clone the artifact (weights shared through `Arc`s inside the model).
fn tiny_assistant() -> MpiRical {
    static SHARED: OnceLock<MpiRical> = OnceLock::new();
    SHARED
        .get_or_init(|| {
            let ccfg = CorpusConfig {
                programs: 40,
                seed: 33,
                max_tokens: 320,
                threads: 1,
            };
            let (_, ds, _) = generate_dataset(&ccfg);
            let splits = ds.split(7);
            let mut cfg = MpiRicalConfig {
                model: ModelConfig::tiny(),
                vocab_min_freq: 1,
                ..Default::default()
            };
            cfg.model.max_enc_len = 256;
            cfg.model.max_dec_len = 230;
            cfg.train.epochs = 1;
            cfg.train.batch_size = 8;
            cfg.train.threads = 1;
            cfg.train.validate = false;
            MpiRical::train(&splits.train, &splits.val, &cfg, |_| {}).0
        })
        .clone()
}

fn int8_assistant() -> MpiRical {
    let mut assistant = tiny_assistant();
    assistant.decode = DecodeOptions {
        beam: 1,
        min_len: 0,
        precision: Precision::Int8,
    };
    assistant
}

const BUFFERS: [&str; 4] = [
    "int main() { int rank; return 0; }",
    "int main() { double local = 0.0; return 0; }",
    "int main() { int x = 1; if (x", // mid-edit buffer
    "int main() { return 0; }",
];

fn start(assistant: MpiRical, budget: usize, workers: usize) -> Server {
    Server::start(
        Arc::new(assistant),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            pending_budget: budget,
            retry_after_steps: 16,
        },
    )
    .expect("bind loopback")
}

/// The in-process reference: the inline (single-scheduler, deterministic)
/// `SuggestService` path, serialized exactly as the wire serializes it.
fn reference_payloads(assistant: &MpiRical, buffers: &[&str]) -> Vec<String> {
    let mut service = SuggestService::new(assistant);
    let tickets: Vec<_> = buffers.iter().map(|b| service.submit(b)).collect();
    service.run();
    tickets
        .into_iter()
        .map(|t| match service.poll(t) {
            SuggestPoll::Done {
                suggestions,
                health,
                ..
            } => done_payload(&suggestions, &health),
            other => panic!("reference not finished: {other:?}"),
        })
        .collect()
}

/// The bitwise-comparison payload: suggestions + parse health, serialized.
/// Scheduling telemetry is deliberately excluded — queue waits depend on
/// the concurrent interleaving, which is the scheduler's business, not
/// the transport's.
fn done_payload(suggestions: &[Suggestion], health: &ParseHealth) -> String {
    serde_json::to_string(&(suggestions.to_vec(), health.clone())).expect("payload serializes")
}

fn expect_ticket(outcome: Submitted) -> u64 {
    match outcome {
        Submitted::Ticket(id) => id,
        other => panic!("submission not admitted: {other:?}"),
    }
}

fn expect_done(state: SuggestPoll) -> String {
    match state {
        SuggestPoll::Done {
            suggestions,
            health,
            ..
        } => done_payload(&suggestions, &health),
        other => panic!("ticket not Done: {other:?}"),
    }
}

/// Drive `clients` concurrent connections, each submitting every buffer
/// and redeeming its own tickets, and pin every wire payload to the
/// in-process reference byte for byte.
fn concurrent_clients_match_reference(assistant: MpiRical, clients: usize) {
    let want = reference_payloads(&assistant, &BUFFERS);
    let server = start(assistant, 256, 2);
    let addr = server.addr();
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            let want = want.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let ids: Vec<u64> = BUFFERS
                    .iter()
                    .map(|b| expect_ticket(client.submit(b).expect("submit")))
                    .collect();
                for (id, want) in ids.into_iter().zip(&want) {
                    let got = expect_done(client.wait(id).expect("wait"));
                    assert_eq!(&got, want, "wire payload == in-process reference");
                    assert_eq!(
                        client.poll(id).expect("re-poll"),
                        SuggestPoll::Unknown,
                        "tickets redeem once over the wire too"
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    let mut closer = Client::connect(addr).expect("connect");
    let pool = closer.drain().expect("drain");
    assert_eq!(pool.pages_live, 0, "drained daemon leaked KV pages");
    server.shutdown();
}

/// Acceptance (a), f32: concurrent wire sessions are bitwise-equal to the
/// in-process reference.
#[test]
fn wire_matches_in_process_reference_f32() {
    concurrent_clients_match_reference(tiny_assistant(), 4);
}

/// Acceptance (a), int8: the quantized artifact serves identically over
/// the wire.
#[test]
fn wire_matches_in_process_reference_int8() {
    concurrent_clients_match_reference(int8_assistant(), 3);
}

/// Acceptance (b): the admission budget sheds with a typed `Busy` and
/// does not queue. The budget counts unredeemed tickets, so submitting
/// `budget + k` without polling yields exactly `k` sheds; redeeming
/// frees the slots again.
#[test]
fn submits_past_budget_get_typed_busy() {
    let budget = 2;
    let server = start(tiny_assistant(), budget, 2);
    let mut client = Client::connect(server.addr()).expect("connect");

    let admitted: Vec<u64> = (0..budget)
        .map(|i| expect_ticket(client.submit(BUFFERS[i % BUFFERS.len()]).expect("submit")))
        .collect();
    for i in 0..3 {
        match client.submit(BUFFERS[i % BUFFERS.len()]).expect("submit") {
            Submitted::Busy { retry_after_steps } => {
                assert_eq!(retry_after_steps, 16, "config's backoff hint");
            }
            other => panic!("submission {i} past the budget was not shed: {other:?}"),
        }
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.counters.sheds, 3, "every shed is counted");
    assert_eq!(stats.outstanding, budget, "nothing past the budget queued");

    // Redeeming releases budget: the next submission is admitted again.
    for id in admitted {
        assert!(matches!(
            client.wait(id).expect("wait"),
            SuggestPoll::Done { .. }
        ));
    }
    let late = expect_ticket(client.submit(BUFFERS[0]).expect("submit"));
    assert!(matches!(
        client.wait(late).expect("wait"),
        SuggestPoll::Done { .. }
    ));
    let pool = client.drain().expect("drain");
    assert_eq!(pool.pages_live, 0);
}

/// Acceptance (c): `Drain` completes in-flight work, the final pool shows
/// zero live pages, late polls redeem parked results (even from a new
/// connection), and post-drain submissions are rejected.
#[test]
fn drain_completes_in_flight_work_and_parks_results() {
    let assistant = tiny_assistant();
    let want = reference_payloads(&assistant, &BUFFERS);
    let server = start(assistant, 64, 2);
    let addr = server.addr();

    let mut submitter = Client::connect(addr).expect("connect");
    let ids: Vec<u64> = BUFFERS
        .iter()
        .map(|b| expect_ticket(submitter.submit(b).expect("submit")))
        .collect();

    // Drain from a different connection while the work is in flight.
    let mut drainer = Client::connect(addr).expect("connect");
    let pool = drainer.drain().expect("drain");
    assert_eq!(pool.pages_live, 0, "drain left live pages");

    let stats = drainer.stats().expect("stats");
    assert!(stats.draining, "post-drain stats report the drained state");
    assert_eq!(stats.pending, 0);

    match submitter.submit(BUFFERS[0]).expect("submit") {
        Submitted::Rejected { reason } => {
            assert!(
                reason.contains("drain"),
                "refusal names the drain: {reason}"
            )
        }
        other => panic!("post-drain submission not rejected: {other:?}"),
    }

    // Parked results survive the engine: redeem from a brand-new
    // connection, exactly once each.
    let mut late = Client::connect(addr).expect("connect");
    for (id, want) in ids.into_iter().zip(&want) {
        let got = expect_done(late.poll(id).expect("late poll"));
        assert_eq!(&got, want, "parked result == in-process reference");
        assert_eq!(
            late.poll(id).expect("re-poll"),
            SuggestPoll::Unknown,
            "parked results redeem once"
        );
    }
    server.shutdown();
}

/// Acceptance (d): a malformed frame terminates only its own connection —
/// the daemon keeps serving a concurrent well-formed session to a correct
/// finish, and the fault is counted.
#[test]
fn malformed_frame_kills_only_its_own_connection() {
    let assistant = tiny_assistant();
    let want = reference_payloads(&assistant, &BUFFERS[..1]);
    let server = start(assistant, 64, 2);
    let addr = server.addr();

    let mut good = Client::connect(addr).expect("connect");
    let id = expect_ticket(good.submit(BUFFERS[0]).expect("submit"));

    // Fault 1: an oversize length prefix.
    let mut evil = Client::connect(addr).expect("connect");
    evil.send_raw(&u32::MAX.to_be_bytes()).expect("send prefix");
    assert!(
        evil.recv_response().is_err(),
        "oversize prefix must kill the connection"
    );

    // Fault 2: a well-framed garbage payload on a fresh connection.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write_frame(&mut stream, b"this is not json").expect("send garbage");
    }
    // Fault 3: a truncated frame (prefix promises more than is sent).
    {
        let mut evil = Client::connect(addr).expect("connect");
        evil.send_raw(&8u32.to_be_bytes()).expect("prefix");
        evil.send_raw(b"abc").expect("short payload");
        // Dropping the connection leaves the frame truncated.
    }

    // The well-formed session is untouched.
    let got = expect_done(good.wait(id).expect("wait"));
    assert_eq!(got, want[0], "concurrent session completes normally");
    let stats = good.stats().expect("stats");
    assert!(
        stats.counters.malformed >= 2,
        "malformed frames are counted: {:?}",
        stats.counters
    );
    let pool = good.drain().expect("drain");
    assert_eq!(pool.pages_live, 0);
    server.shutdown();
}

/// Tickets are raw `u64`s valid across connections: submit, drop the
/// connection, reconnect, and redeem — before any drain.
#[test]
fn reconnect_and_repoll_by_raw_id() {
    let assistant = tiny_assistant();
    let want = reference_payloads(&assistant, &BUFFERS[..2]);
    let server = start(assistant, 64, 2);
    let addr = server.addr();

    let ids: Vec<u64> = {
        let mut first = Client::connect(addr).expect("connect");
        BUFFERS[..2]
            .iter()
            .map(|b| expect_ticket(first.submit(b).expect("submit")))
            .collect()
        // `first` drops here: connection gone, tickets still live.
    };

    let mut second = Client::connect(addr).expect("reconnect");
    for (id, want) in ids.into_iter().zip(&want) {
        let got = expect_done(second.wait(id).expect("wait"));
        assert_eq!(&got, want, "reconnected poll == reference");
    }
    let pool = second.drain().expect("drain");
    assert_eq!(pool.pages_live, 0);
    server.shutdown();
}

/// Submit/cancel/poll races from concurrent connections: every ticket
/// resolves to exactly one terminal state, cancels never corrupt
/// survivors, and the drained pool is clean.
#[test]
fn submit_cancel_poll_races_resolve_each_ticket_once() {
    let assistant = tiny_assistant();
    let want = reference_payloads(&assistant, &BUFFERS);
    let server = start(assistant, 256, 2);
    let addr = server.addr();

    let workers: Vec<_> = (0..3)
        .map(|worker| {
            let want = want.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..4 {
                    let pick = (worker + round) % BUFFERS.len();
                    let id = expect_ticket(client.submit(BUFFERS[pick]).expect("submit"));
                    // Every other round, race a cancel against the decode.
                    let tried_cancel = round % 2 == 0 && client.cancel(id).expect("cancel");
                    match client.wait(id).expect("wait") {
                        SuggestPoll::Done {
                            suggestions,
                            health,
                            ..
                        } => {
                            assert_eq!(
                                done_payload(&suggestions, &health),
                                want[pick],
                                "a survivor's payload stays pinned to the reference"
                            );
                        }
                        SuggestPoll::Cancelled => {
                            assert!(tried_cancel, "only cancelled tickets resolve Cancelled");
                        }
                        other => panic!("non-terminal wait result: {other:?}"),
                    }
                    assert_eq!(
                        client.poll(id).expect("re-poll"),
                        SuggestPoll::Unknown,
                        "terminal states redeem exactly once"
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    let mut closer = Client::connect(addr).expect("connect");
    let pool = closer.drain().expect("drain");
    assert_eq!(pool.pages_live, 0);
    server.shutdown();
}

/// The CI release smoke: 16 concurrent clients, a `Stats` health check,
/// and a drain to zero leaked pages.
#[test]
fn smoke_sixteen_concurrent_clients_stats_and_drain() {
    let assistant = tiny_assistant();
    let want = reference_payloads(&assistant, &BUFFERS);
    let server = start(assistant, 256, 2);
    let addr = server.addr();

    let clients = 16;
    let workers: Vec<_> = (0..clients)
        .map(|worker| {
            let want = want.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let pick = worker % BUFFERS.len();
                let id = expect_ticket(
                    client
                        .submit_with(
                            BUFFERS[pick],
                            if worker % 2 == 0 {
                                SubmitOptions::interactive()
                            } else {
                                SubmitOptions::bulk()
                            },
                        )
                        .expect("submit"),
                );
                let got = expect_done(client.wait(id).expect("wait"));
                assert_eq!(&got, &want[pick], "smoke payload == reference");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert!(
        stats.counters.connections >= clients as u64,
        "every client connection counted: {:?}",
        stats.counters
    );
    assert!(
        stats.counters.frames >= 2 * clients as u64,
        "submit + polls all arrived as well-formed frames"
    );
    assert_eq!(stats.counters.malformed, 0);
    assert_eq!(stats.telemetry.completed, clients as u64);
    assert!(
        stats.telemetry.decode_steps >= clients as u64,
        "every completed request decoded at least one step"
    );
    assert_eq!(stats.workers, 2);
    assert!(!stats.draining);

    let pool = client.drain().expect("drain");
    assert_eq!(pool.pages_live, 0, "smoke drained to zero leaked pages");
    server.shutdown();
}
