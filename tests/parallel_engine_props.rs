//! Property harness for the sharded multi-core serving engine
//! (`mpirical_model::engine`) and the scheduler features that ride with it
//! (EDF ordering, priority-aware page eviction).
//!
//! What is pinned here:
//!
//! 1. **Worker-count invariance** — random request schedules (prompt
//!    lengths, beams 1–4, priority classes, token caps, late joins,
//!    cancellations) run through engines with 1, 2, and 4 workers, in f32
//!    AND int8. Every request that completes must be **bitwise identical**
//!    to the single-request `decode_encoded_prompted_contiguous` reference
//!    — the same oracle `tests/serving_props.rs` uses — which transitively
//!    pins every pair of worker counts to each other. The suite forces the
//!    intra-step lane parallelism on (`MPIRICAL_LANE_PAR`), so the
//!    threaded per-lane attention path is exercised even at these tiny
//!    shapes. After drain + shutdown, **every worker's pool reports zero
//!    live pages**.
//! 2. **Seeded determinism** — the same engine seed, worker count, and
//!    interactive submission sequence reproduce the exact same
//!    telemetry-visible placement (`Engine::placements`), twice.
//! 3. **Concurrency hammer** — 8 client threads submit/cancel/poll against
//!    one 4-worker engine; every completion is still bitwise pinned to the
//!    reference and no page leaks. Iterations elevate via `HAMMER_ITERS`
//!    (the CI stress job raises it; tier-1 keeps it small).
//! 4. **Priority-aware eviction** — under a soft page limit, bulk groups
//!    are evicted before interactive ones (interactive telemetry shows
//!    zero evictions), evicted work replays to a bitwise-identical result,
//!    and the pool still drains to zero.
//! 5. **EDF + aging** — earlier deadlines admit first within a priority
//!    class, and a proptest over adversarial early-deadline interactive
//!    streams shows aging still bounds bulk starvation.
//! 6. **Cross-worker radix sharing** — families of near-identical prompts
//!    (one encoder output, random single-token edits of a shared base)
//!    stay bitwise pinned to the reference at every worker count and
//!    precision while the workers share one radix prefix index; a
//!    sequenced 2-worker schedule pins the hit accounting (one cold miss,
//!    then hits/partial hits regardless of which worker serves each
//!    member); every run leaves zero live pages.
//!
//! Case counts elevate via `PROPTEST_CASES` (CI runs the suite a second
//! time with a larger count).

use mpirical_model::decode::{decode_encoded_prompted_contiguous, encode_source};
use mpirical_model::transformer::{build_params, TransformerParams};
use mpirical_model::vocab::{EOS, SOS};
use mpirical_model::{
    BatchDecoder, BatchRequest, DecodeOptions, Engine, EngineConfig, EngineModel, EngineTicket,
    ModelConfig, PollResult, Precision, SubmitOptions,
};
use mpirical_tensor::{ParamStore, Tensor};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

type Fixture = (
    ModelConfig,
    ParamStore,
    TransformerParams,
    Vec<Tensor>,
    Arc<EngineModel>,
    Arc<EngineModel>,
);

/// One random multi-layer model, a few encoder outputs, and prebuilt
/// f32/int8 engine bundles, built once for the whole suite (the
/// equivalence properties hold for any weights).
fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        // Force the intra-step lane parallelism on before the first decode
        // anywhere in this process: the threshold would otherwise keep
        // these tiny shapes serial and the threaded per-lane path untested.
        // (Read once via OnceLock in the model crate; every test funnels
        // through this fixture first.)
        std::env::set_var("MPIRICAL_LANE_PAR", "2");
        let mut cfg = ModelConfig::tiny();
        cfg.vocab_size = 24;
        cfg.n_dec_layers = 2;
        let mut store = ParamStore::new();
        let params = build_params(&cfg, &mut store, 47);
        let encs: Vec<Tensor> = (0..3)
            .map(|i| encode_source(&store, &params, &cfg, &[SOS, 6 + i, 8 + 2 * i, 9, EOS]))
            .collect();
        let f32_model = Arc::new(EngineModel::new(
            store.clone(),
            params.clone(),
            cfg.clone(),
            Precision::F32,
        ));
        let int8_model = Arc::new(EngineModel::new(
            store.clone(),
            params.clone(),
            cfg.clone(),
            Precision::Int8,
        ));
        (cfg, store, params, encs, f32_model, int8_model)
    })
}

/// One randomized request: decode shape, class, token cap, submission
/// wave, and an optional cancellation wave.
#[derive(Debug, Clone)]
struct Spec {
    prompt: Vec<usize>,
    max_len: usize,
    opts: DecodeOptions,
    bulk: bool,
    max_new: Option<usize>,
    join: usize,
    cancel_at: Option<usize>,
    src: usize,
}

impl Spec {
    fn effective_max_len(&self) -> usize {
        match self.max_new {
            Some(cap) => self.max_len.min(self.prompt.len() + cap),
            None => self.max_len,
        }
    }

    fn request(&self, enc: &Tensor, precision: Precision) -> BatchRequest {
        let mut submit = if self.bulk {
            SubmitOptions::bulk()
        } else {
            SubmitOptions::interactive()
        };
        submit.max_new_tokens = self.max_new;
        BatchRequest {
            enc_out: enc.clone(),
            prompt: self.prompt.clone(),
            max_len: self.max_len,
            opts: DecodeOptions {
                precision,
                ..self.opts
            },
            submit,
        }
    }

    fn reference(
        &self,
        store: &ParamStore,
        params: &TransformerParams,
        cfg: &ModelConfig,
        enc: &Tensor,
        precision: Precision,
    ) -> Vec<usize> {
        decode_encoded_prompted_contiguous(
            store,
            params,
            cfg,
            enc,
            &self.prompt,
            self.effective_max_len(),
            DecodeOptions {
                precision,
                ..self.opts
            },
        )
    }
}

/// Run one schedule through an engine: submit in join-wave order, fire the
/// wave's cancellations, drain, collect each request's outcome
/// (`Some(ids)` finished / `None` cancelled), and verify shutdown leaves
/// zero live pages on every worker's pool.
fn run_engine_schedule(
    model: &Arc<EngineModel>,
    specs: &[Spec],
    encs: &[Tensor],
    precision: Precision,
    workers: usize,
) -> Vec<Option<Vec<usize>>> {
    let engine = Engine::new(
        Arc::clone(model),
        EngineConfig {
            workers,
            max_batch: 8, // ≥ the widest generated beam
            aging_steps: 6,
            seed: 42,
            ..EngineConfig::default()
        },
    );
    let mut tickets: Vec<Option<EngineTicket>> = vec![None; specs.len()];
    let last_wave = specs
        .iter()
        .flat_map(|s| [s.join, s.cancel_at.unwrap_or(0)])
        .max()
        .unwrap_or(0);
    for wave in 0..=last_wave {
        for (i, s) in specs.iter().enumerate() {
            if s.join == wave {
                tickets[i] = Some(engine.submit(s.request(&encs[s.src], precision)));
            }
            if s.cancel_at == Some(wave) {
                // Aim the cancel wherever the engine put the request by
                // now: front-end queue, a worker's scheduler, mid-decode,
                // or already finished (refused).
                if let Some(t) = tickets[i] {
                    engine.cancel(t);
                }
            }
        }
    }
    engine.drain();
    assert_eq!(engine.pending(), 0, "drain() left requests pending");
    let outcomes = tickets
        .iter()
        .map(|t| {
            let t = t.expect("all specs submitted");
            match engine.poll(t) {
                PollResult::Done { ids, .. } => Some(ids),
                PollResult::Cancelled => None,
                other => panic!("{workers}-worker engine lost {t}: {other:?}"),
            }
        })
        .collect();
    for (w, stats) in engine.shutdown().into_iter().enumerate() {
        assert_eq!(
            stats.pages_live, 0,
            "{workers}-worker engine: worker {w} leaked pages"
        );
    }
    outcomes
}

/// `Option` strategy (the shim has no `proptest::option` module).
fn maybe(range: std::ops::Range<usize>) -> impl Strategy<Value = Option<usize>> {
    prop_oneof![Just(None), range.prop_map(Some)]
}

proptest! {
    // Each case decodes up to 6 requests through 6 engines (3 worker
    // counts × 2 precisions); few default cases keep tier-1 fast (CI
    // elevates via PROPTEST_CASES).
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property 1: random schedules are bitwise reference-equivalent at
    /// every worker count and precision, and every pool drains to zero.
    #[test]
    fn random_schedules_are_worker_count_invariant(
        specs in proptest::collection::vec(
            (
                (proptest::collection::vec(6usize..24, 0..4), 2usize..24),
                ((0usize..4, 1usize..5), (any::<bool>(), maybe(0..10))),
                ((0usize..4, maybe(0..4)), 0usize..3),
            ),
            1..7,
        ),
    ) {
        let (cfg, store, params, encs, f32_model, int8_model) = fixture();
        let specs: Vec<Spec> = specs
            .into_iter()
            .map(|((extra, max_len), ((min_len, beam), (bulk, max_new)), ((join, cancel_at), src))| {
                Spec {
                    prompt: std::iter::once(SOS).chain(extra).collect(),
                    max_len,
                    opts: DecodeOptions { beam, min_len, ..Default::default() },
                    bulk,
                    max_new,
                    join,
                    cancel_at,
                    src,
                }
            })
            .collect();

        for (precision, model) in [
            (Precision::F32, f32_model),
            (Precision::Int8, int8_model),
        ] {
            let references: Vec<Vec<usize>> = specs
                .iter()
                .map(|s| s.reference(store, params, cfg, &encs[s.src], precision))
                .collect();
            for workers in [1usize, 2, 4] {
                let outcomes = run_engine_schedule(model, &specs, encs, precision, workers);
                for (i, (outcome, want)) in outcomes.iter().zip(&references).enumerate() {
                    // A cancelled request may still have completed (the
                    // race is documented); a completed one must be bitwise
                    // pinned to the single-request reference — which pins
                    // all worker counts to each other transitively.
                    if let Some(ids) = outcome {
                        prop_assert_eq!(
                            ids, want,
                            "{:?} {} workers, request {} (bulk={} beam={}): sharding \
                             changed the tokens",
                            precision, workers, i, specs[i].bulk, specs[i].opts.beam
                        );
                    } else {
                        prop_assert!(
                            specs[i].cancel_at.is_some(),
                            "request {} cancelled without a cancel in the schedule", i
                        );
                    }
                }
            }
        }
    }
}

/// Property 2: seeded determinism — same seed + worker count + interactive
/// submission sequence ⇒ identical placement, run twice, for every worker
/// count; and outputs stay pinned to the reference throughout.
#[test]
fn seeded_schedules_place_deterministically() {
    let (cfg, store, params, encs, f32_model, _) = fixture();
    // A fixed interactive-only schedule with mixed beam widths (bulk
    // placement is work-stealing — timing-reactive by design — so the
    // determinism contract is scoped to front-end placement).
    let beams = [1usize, 2, 1, 4, 1, 2, 1, 1, 3, 1, 2, 1];
    for workers in [1usize, 2, 4] {
        let run = |seed: u64| {
            let engine = Engine::new(
                Arc::clone(f32_model),
                EngineConfig {
                    workers,
                    max_batch: 4,
                    seed,
                    ..EngineConfig::default()
                },
            );
            let tickets: Vec<EngineTicket> = beams
                .iter()
                .enumerate()
                .map(|(i, &beam)| {
                    let mut req = BatchRequest::beam(encs[i % encs.len()].clone(), 14, beam);
                    req.opts.min_len = 0;
                    engine.submit(req)
                })
                .collect();
            engine.drain();
            for (i, t) in tickets.into_iter().enumerate() {
                let src = i % encs.len();
                let want = decode_encoded_prompted_contiguous(
                    store,
                    params,
                    cfg,
                    &encs[src],
                    &[SOS],
                    14,
                    DecodeOptions {
                        beam: beams[i],
                        min_len: 0,
                        ..Default::default()
                    },
                );
                match engine.poll(t) {
                    PollResult::Done { ids, .. } => {
                        assert_eq!(ids, want, "workers={workers} request {i}")
                    }
                    other => panic!("request {i} unfinished: {other:?}"),
                }
            }
            let placements = engine.placements();
            for (w, stats) in engine.shutdown().into_iter().enumerate() {
                assert_eq!(stats.pages_live, 0, "worker {w} leaked pages");
            }
            placements
        };
        let first = run(1234);
        let second = run(1234);
        assert_eq!(
            first, second,
            "workers={workers}: same seed + schedule must replay the same placement"
        );
    }
}

/// Property 3: the concurrency hammer — 8 client threads submit, cancel,
/// and poll against one 4-worker engine. Every completion is bitwise
/// pinned to the reference, every ticket resolves, and no pool leaks.
/// `HAMMER_ITERS` elevates the per-thread iteration count (CI stress job).
#[test]
fn hammer_concurrent_clients_are_race_free() {
    let (cfg, store, params, encs, f32_model, _) = fixture();
    let iters: usize = std::env::var("HAMMER_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let references: Vec<Vec<usize>> = encs
        .iter()
        .map(|e| {
            decode_encoded_prompted_contiguous(
                store,
                params,
                cfg,
                e,
                &[SOS],
                12,
                DecodeOptions::default(),
            )
        })
        .collect();
    let engine = Engine::new(
        Arc::clone(f32_model),
        EngineConfig {
            workers: 4,
            max_batch: 4,
            ..EngineConfig::default()
        },
    );
    crossbeam::scope(|scope| {
        for client in 0..8usize {
            let engine = &engine;
            let encs = &encs;
            let references = &references;
            scope.spawn(move |_| {
                for i in 0..iters {
                    let src = (client + i) % encs.len();
                    let mut req = BatchRequest::greedy(encs[src].clone(), 12);
                    if (client + i) % 2 == 0 {
                        req = req.bulk();
                    }
                    let ticket = engine.submit(req);
                    let try_cancel = (client * 7 + i) % 3 == 0;
                    if try_cancel {
                        engine.cancel(ticket);
                    }
                    loop {
                        match engine.poll(ticket) {
                            PollResult::Done { ids, .. } => {
                                assert_eq!(
                                    ids, references[src],
                                    "client {client} iter {i}: concurrent load changed tokens"
                                );
                                break;
                            }
                            PollResult::Cancelled => {
                                assert!(try_cancel, "spurious cancellation");
                                break;
                            }
                            PollResult::Queued { .. } | PollResult::Decoding { .. } => {
                                std::thread::yield_now();
                            }
                            PollResult::Unknown => {
                                panic!("client {client} iter {i}: live ticket became Unknown")
                            }
                        }
                    }
                }
            });
        }
    })
    .expect("hammer clients do not panic");
    engine.drain();
    assert_eq!(engine.pending(), 0);
    for (w, stats) in engine.shutdown().into_iter().enumerate() {
        assert_eq!(stats.pages_live, 0, "worker {w} leaked pages under hammer");
    }
}

/// Property 4: priority-aware eviction under a soft page limit. Bulk
/// groups admitted first are evicted when protected (interactive) work
/// needs the pool; interactive requests record zero evictions; evicted
/// bulk replays to bitwise-identical output; the pool drains.
#[test]
fn eviction_prefers_bulk_and_replays_bitwise() {
    let (cfg, store, params, encs, _, _) = fixture();
    let mut dec = BatchDecoder::new(store, params, cfg, 4);
    dec.set_aging_steps(8);
    // Small enough that 3 long-lived bulk lanes + interactive prefill
    // exceed it; large enough that a lone group fits comfortably.
    dec.set_page_limit(Some(10));
    let pool = dec.pool().clone();

    let long = DecodeOptions {
        beam: 1,
        min_len: 12,
        ..Default::default()
    };
    let bulk_ids: Vec<_> = (0..3)
        .map(|i| {
            dec.submit(BatchRequest {
                enc_out: encs[i % encs.len()].clone(),
                prompt: vec![SOS],
                max_len: 20,
                opts: long,
                submit: SubmitOptions::bulk(),
            })
        })
        .collect();
    // Let the bulk groups admit and grow their KV past the soft limit
    // (no protected group exists yet, so nothing is evicted).
    for _ in 0..6 {
        dec.step();
    }
    assert_eq!(dec.evictions(), 0, "no eviction without protected work");

    let interactive_ids: Vec<_> = (0..2)
        .map(|i| {
            dec.submit(BatchRequest {
                enc_out: encs[i].clone(),
                prompt: vec![SOS],
                max_len: 20,
                opts: long,
                submit: SubmitOptions::interactive(),
            })
        })
        .collect();
    let mut steps = 0;
    while dec.step() > 0 {
        steps += 1;
        assert!(steps < 4000, "eviction schedule failed to drain");
    }
    assert!(
        dec.evictions() >= 1,
        "interactive pressure over the page limit must evict bulk"
    );

    for (i, id) in interactive_ids.into_iter().enumerate() {
        match dec.poll(id) {
            PollResult::Done { ids, telemetry, .. } => {
                assert_eq!(
                    telemetry.evictions, 0,
                    "interactive request {i} must never be evicted"
                );
                let want = decode_encoded_prompted_contiguous(
                    store,
                    params,
                    cfg,
                    &encs[i],
                    &[SOS],
                    20,
                    long,
                );
                assert_eq!(ids, want, "interactive request {i} diverged");
            }
            other => panic!("interactive request {i} unfinished: {other:?}"),
        }
    }
    let mut evicted_any = false;
    for (i, id) in bulk_ids.into_iter().enumerate() {
        match dec.poll(id) {
            PollResult::Done { ids, telemetry, .. } => {
                evicted_any |= telemetry.evictions > 0;
                let want = decode_encoded_prompted_contiguous(
                    store,
                    params,
                    cfg,
                    &encs[i % encs.len()],
                    &[SOS],
                    20,
                    long,
                );
                assert_eq!(
                    ids, want,
                    "bulk request {i} (evictions={}) must replay bitwise",
                    telemetry.evictions
                );
            }
            other => panic!("bulk request {i} unfinished: {other:?}"),
        }
    }
    assert!(evicted_any, "at least one bulk request saw an eviction");
    drop(dec);
    assert_eq!(pool.stats().pages_live, 0, "eviction schedule leaked pages");
}

/// Property 5a: EDF ordering — within one priority class, queued requests
/// are ranked by deadline stamp (earlier first, `None` last), visible via
/// `Queued { position }` before any admission.
#[test]
fn earlier_deadlines_rank_first_within_a_class() {
    let (cfg, store, params, encs, _, _) = fixture();
    let mut dec = BatchDecoder::new(store, params, cfg, 1);
    let submit_with = |deadline: Option<u64>| {
        let mut s = SubmitOptions::bulk();
        s.deadline = deadline;
        s
    };
    // Occupy the single lane so the deadline trio stays queued.
    let running = dec.submit(BatchRequest::greedy(encs[0].clone(), 18));
    dec.step();
    let late = dec.submit(BatchRequest {
        enc_out: encs[0].clone(),
        prompt: vec![SOS],
        max_len: 8,
        opts: DecodeOptions::default(),
        submit: submit_with(Some(7)),
    });
    let early = dec.submit(BatchRequest {
        enc_out: encs[1].clone(),
        prompt: vec![SOS],
        max_len: 8,
        opts: DecodeOptions::default(),
        submit: submit_with(Some(3)),
    });
    let never = dec.submit(BatchRequest {
        enc_out: encs[2].clone(),
        prompt: vec![SOS],
        max_len: 8,
        opts: DecodeOptions::default(),
        submit: submit_with(None),
    });
    // Submission order was 7, 3, None — EDF must rank 3 < 7 < None.
    assert_eq!(dec.poll(early), PollResult::Queued { position: 0 });
    assert_eq!(dec.poll(late), PollResult::Queued { position: 1 });
    assert_eq!(dec.poll(never), PollResult::Queued { position: 2 });
    dec.run();
    for id in [running, late, early, never] {
        assert!(
            matches!(dec.poll(id), PollResult::Done { .. }),
            "{id} did not finish"
        );
    }
}

/// Property 5b (mechanism): once aged, a deadline-less bulk request
/// outranks even a *fresh* interactive carrying the earliest possible
/// deadline — aging beats EDF, which is exactly what prevents an
/// adversarial deadline stream from starving bulk forever.
#[test]
fn aged_bulk_outranks_fresh_earliest_deadline() {
    let (cfg, store, params, encs, _, _) = fixture();
    let aging = 4u64;
    let mut dec = BatchDecoder::new(store, params, cfg, 1);
    dec.set_aging_steps(aging);
    // Hold the single lane long enough that nothing below gets admitted
    // (interactive work never preempts interactive work).
    let running = dec.submit(BatchRequest {
        enc_out: encs[0].clone(),
        prompt: vec![SOS],
        max_len: 18,
        opts: DecodeOptions {
            min_len: 10,
            ..Default::default()
        },
        submit: SubmitOptions::interactive(),
    });
    dec.step();
    let bulk = dec.submit(BatchRequest {
        enc_out: encs[1].clone(),
        prompt: vec![SOS],
        max_len: 6,
        opts: DecodeOptions::default(),
        submit: SubmitOptions::bulk(),
    });
    assert_eq!(dec.poll(bulk), PollResult::Queued { position: 0 });
    for _ in 0..=aging {
        dec.step();
    }
    // The adversary arrives fresh with the earliest possible deadline —
    // and still ranks behind the aged bulk request.
    let mut submit = SubmitOptions::interactive();
    submit.deadline = Some(0);
    let urgent = dec.submit(BatchRequest {
        enc_out: encs[2].clone(),
        prompt: vec![SOS],
        max_len: 6,
        opts: DecodeOptions::default(),
        submit,
    });
    assert_eq!(
        dec.poll(bulk),
        PollResult::Queued { position: 0 },
        "aged bulk must outrank a fresh earliest-deadline interactive"
    );
    assert_eq!(dec.poll(urgent), PollResult::Queued { position: 1 });
    dec.run();
    for id in [running, bulk, urgent] {
        assert!(
            matches!(dec.poll(id), PollResult::Done { .. }),
            "{id} did not finish"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property 5b (bound): under an adversarial stream of ever-earlier
    /// interactive deadlines, a queued bulk request's wait stays bounded
    /// by the aging threshold plus the total submitted interactive work —
    /// linear in the schedule, never indefinite. (Queued interactives age
    /// too and aged-EDF ranks their explicit deadlines ahead of the
    /// deadline-less bulk, so the per-request bound is the total backlog,
    /// not one request's length; the mechanism test above pins the
    /// class-ordering half.)
    #[test]
    fn aging_bounds_starvation_under_adversarial_deadlines(
        int_lens in proptest::collection::vec(2usize..10, 4..10),
    ) {
        let (cfg, store, params, encs, _, _) = fixture();
        let aging = 5u64;
        let total_int_work: u64 = int_lens.iter().map(|&l| l as u64 + 3).sum();
        let mut dec = BatchDecoder::new(store, params, cfg, 1);
        dec.set_aging_steps(aging);
        let bulk = dec.submit(BatchRequest {
            enc_out: encs[0].clone(),
            prompt: vec![SOS],
            max_len: 8,
            opts: DecodeOptions::default(),
            submit: SubmitOptions::bulk(),
        });
        // Adversary: every step, inject an interactive request whose
        // deadline is *earlier* than every previous one. Pure EDF would
        // never admit the (deadline-less, lower-class) bulk request.
        let mut next_deadline = int_lens.len() as u64 + 10;
        for &len in &int_lens {
            next_deadline -= 1;
            let mut submit = SubmitOptions::interactive();
            submit.deadline = Some(next_deadline);
            dec.submit(BatchRequest {
                enc_out: encs[1].clone(),
                prompt: vec![SOS],
                max_len: len.max(2),
                opts: DecodeOptions {
                    min_len: len.saturating_sub(1),
                    ..Default::default()
                },
                submit,
            });
            dec.step();
        }
        dec.run();
        match dec.poll(bulk) {
            PollResult::Done { telemetry, .. } => {
                let bound = aging + total_int_work + 8;
                prop_assert!(
                    telemetry.queue_wait_steps <= bound,
                    "bulk starved: waited {} > bound {} (aging {} + total \
                     interactive work {})",
                    telemetry.queue_wait_steps, bound, aging, total_int_work
                );
            }
            other => panic!("bulk request unfinished: {other:?}"),
        }
    }
}

proptest! {
    // Each case decodes the family through 8 engines (3 worker counts + a
    // sequenced run, × 2 precisions); few default cases keep tier-1 fast
    // (CI elevates via PROPTEST_CASES).
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property 6: cross-worker radix sharing is bitwise-transparent. The
    /// engines share one prefix index and one page pool across workers, so
    /// a prefill retained by any worker may seed any other worker's
    /// admission — and the tokens must not depend on whether that
    /// happened. The sequenced 2-worker run then pins the accounting:
    /// after the first member's cold prefill, every later member hits the
    /// shared index no matter which worker picks it up.
    #[test]
    fn radix_sharing_is_worker_count_invariant(
        base_extra in proptest::collection::vec(6usize..24, 4..16),
        edits in proptest::collection::vec((1usize..16, 6usize..24), 1..5),
        src in 0usize..3,
    ) {
        let (cfg, store, params, encs, f32_model, int8_model) = fixture();
        let base: Vec<usize> = std::iter::once(SOS).chain(base_extra).collect();
        let mut family = vec![base.clone()];
        for (pos, val) in edits {
            let mut p = base.clone();
            let at = 1 + pos % (p.len() - 1);
            p[at] = val;
            family.push(p);
        }
        let max_len = (base.len() + 6).min(cfg.max_dec_len);
        for (precision, model) in [
            (Precision::F32, f32_model),
            (Precision::Int8, int8_model),
        ] {
            let opts = DecodeOptions { precision, ..Default::default() };
            let references: Vec<Vec<usize>> = family
                .iter()
                .map(|p| decode_encoded_prompted_contiguous(
                    store, params, cfg, &encs[src], p, max_len, opts,
                ))
                .collect();
            let request = |p: &Vec<usize>| BatchRequest {
                enc_out: encs[src].clone(),
                prompt: p.clone(),
                max_len,
                opts,
                submit: SubmitOptions::default(),
            };
            for workers in [1usize, 2, 4] {
                let engine = Engine::new(
                    Arc::clone(model),
                    EngineConfig { workers, max_batch: 4, ..EngineConfig::default() },
                );
                let got = engine.decode_all(family.iter().map(request).collect());
                prop_assert_eq!(
                    &got, &references,
                    "{:?} {} workers: radix sharing changed tokens", precision, workers
                );
                prop_assert_eq!(
                    engine.prefix_stats().lookups(), family.len() as u64,
                    "{:?} {} workers: every admission consults the shared index",
                    precision, workers
                );
                for (w, stats) in engine.shutdown().into_iter().enumerate() {
                    prop_assert_eq!(
                        stats.pages_live, 0,
                        "{:?} {} workers: worker {} leaked pages", precision, workers, w
                    );
                }
            }

            // Sequenced across 2 workers: each member's retained prefill
            // exists before the next lookup, so the accounting is
            // deterministic even though any worker may serve any member.
            let engine = Engine::new(
                Arc::clone(model),
                EngineConfig { workers: 2, max_batch: 4, ..EngineConfig::default() },
            );
            for (p, want) in family.iter().zip(&references) {
                let ticket = engine.submit(request(p));
                engine.drain();
                match engine.poll(ticket) {
                    PollResult::Done { ids, .. } => prop_assert_eq!(
                        &ids, want,
                        "{:?} sequenced: radix sharing changed tokens", precision
                    ),
                    other => panic!("sequenced member unfinished: {other:?}"),
                }
            }
            let s = engine.prefix_stats();
            prop_assert_eq!(
                s.misses, 1,
                "{:?} sequenced: only the first family member prefills cold", precision
            );
            prop_assert_eq!(
                s.hits + s.partial_hits, family.len() as u64 - 1,
                "{:?} sequenced: every later member shares through the index", precision
            );
            for (w, stats) in engine.shutdown().into_iter().enumerate() {
                prop_assert_eq!(
                    stats.pages_live, 0,
                    "{:?} sequenced: worker {} leaked pages", precision, w
                );
            }
        }
    }
}
