//! Property-test harness for the paged KV cache (shims/proptest).
//!
//! Four properties over randomized decode schedules:
//!
//! 1. **Bitwise storage equivalence** — for arbitrary token walks and page
//!    sizes (including 1-row pages), `decode_step` on paged storage emits
//!    logits bit-for-bit equal to the contiguous reference layout.
//! 2. **Fork soundness** — under arbitrary interleavings of step / COW-fork
//!    / drop across a population of caches sharing one pool, every cache
//!    tracks its contiguous twin bitwise, and the pool ends with zero live
//!    pages once all caches drop.
//! 3. **Scheduler equivalence** — random request mixes (prompt lengths,
//!    length caps, `min_len`, beam widths, late joins, early retirements,
//!    duplicate prompts hitting the prefix-share path) through
//!    `BatchDecoder` return exactly the per-request
//!    `decode_encoded_prompted_contiguous` reference outputs, again with
//!    zero leaked pages.
//!
//! 4. **Radix prefix sharing** — families of near-identical prompts (one
//!    encoder output, random single-token edits of a shared base) decode
//!    bitwise-equal to the no-sharing contiguous reference, concurrently
//!    and sequenced; the sequenced order pins the radix index's hit
//!    accounting (one cold miss, then hits/partial hits); the pool always
//!    drains to zero.
//!
//! Properties 1, 3 and 4 also run **quantized**: property 1 repeats each
//! random walk through the int8 projection kernels (`decode_step_quant`)
//! asserting paged-quant ≡ contiguous-quant bitwise per step, and
//! properties 3 and 4 replay every random schedule through an `Int8`
//! scheduler against the contiguous-quant reference — quantization swaps
//! the weight kernels but never touches the K/V storage walk, so the PR 3
//! storage-equivalence invariant must survive it unchanged.
//!
//! Case counts elevate via `PROPTEST_CASES` (CI runs the suite a second
//! time with a larger count).

use mpirical_model::decode::{decode_encoded_prompted_contiguous, encode_source};
use mpirical_model::transformer::{build_params, TransformerParams};
use mpirical_model::vocab::{EOS, SOS};
use mpirical_model::{
    decode_step, decode_step_quant, BatchDecoder, BatchRequest, DecodeOptions, DecoderCache,
    ModelConfig, PagePool, Precision, QuantDecoderWeights, RequestId, SubmitOptions,
};
use mpirical_tensor::{ParamStore, Tensor};
use proptest::prelude::*;
use std::sync::OnceLock;

type Fixture = (
    ModelConfig,
    ParamStore,
    TransformerParams,
    Vec<Tensor>,
    QuantDecoderWeights,
);

/// One random multi-layer model + a few encoder outputs + its int8
/// decoder weights (quantized once, like an artifact would), built once
/// for the whole suite (equivalence properties hold for any weights).
fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut cfg = ModelConfig::tiny();
        cfg.vocab_size = 24;
        cfg.n_dec_layers = 2;
        let mut store = ParamStore::new();
        let params = build_params(&cfg, &mut store, 29);
        let encs: Vec<Tensor> = (0..3)
            .map(|i| encode_source(&store, &params, &cfg, &[SOS, 6 + i, 7 + 2 * i, 9, EOS]))
            .collect();
        let qw = QuantDecoderWeights::new(&store, &params);
        (cfg, store, params, encs, qw)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: arbitrary token walks, arbitrary page sizes → logits
    /// bitwise-equal to the contiguous layout at every single step, and no
    /// page outlives its cache.
    #[test]
    fn random_walks_match_contiguous_bitwise(
        page_rows in prop_oneof![Just(1usize), Just(2), Just(3), Just(5), Just(16)],
        tokens in proptest::collection::vec(1usize..24, 1..40),
        src in 0usize..3,
    ) {
        let (cfg, store, params, encs, qw) = fixture();
        let enc = &encs[src];
        let pool = PagePool::with_page_rows(cfg.d_head(), page_rows);
        let mut paged = DecoderCache::new_in_pool(store, params, cfg, enc, &pool);
        let mut reference = DecoderCache::new_contiguous(store, params, cfg, enc);
        for (step, &tok) in tokens.iter().enumerate() {
            let lp = decode_step(store, params, cfg, &mut paged, tok);
            let lr = decode_step(store, params, cfg, &mut reference, tok);
            prop_assert_eq!(lp, lr, "page_rows={} step={}", page_rows, step);
        }
        prop_assert!(pool.stats().pages_live > 0, "walk allocated pages");
        drop(paged);
        prop_assert_eq!(pool.stats().pages_live, 0, "pages leaked after drop");

        // The same walk through the int8 kernels: quantization must not
        // break the storage-equivalence invariant (bitwise, per step).
        let qpool = PagePool::with_page_rows(cfg.d_head(), page_rows);
        let mut qpaged = DecoderCache::new_in_pool(store, params, cfg, enc, &qpool);
        let mut qreference = DecoderCache::new_contiguous(store, params, cfg, enc);
        for (step, &tok) in tokens.iter().enumerate() {
            let lp = decode_step_quant(store, params, cfg, qw, &mut qpaged, tok);
            let lr = decode_step_quant(store, params, cfg, qw, &mut qreference, tok);
            prop_assert_eq!(lp, lr, "quant page_rows={} step={}", page_rows, step);
        }
        drop(qpaged);
        prop_assert_eq!(qpool.stats().pages_live, 0, "quant pages leaked after drop");
    }

    /// Property 2: random step/fork/drop interleavings over a shared pool.
    /// Ops decode as (kind, token, index): kind%4 ∈ {0,1 step, 2 fork,
    /// 3 drop}, so stepping is twice as likely as forking or dropping.
    #[test]
    fn random_fork_schedules_stay_bitwise_and_leak_free(
        page_rows in prop_oneof![Just(1usize), Just(3), Just(16)],
        ops in proptest::collection::vec(((0usize..4, 1usize..24), 0usize..8), 1..60),
    ) {
        let (cfg, store, params, encs, _) = fixture();
        let enc = &encs[0];
        let pool = PagePool::with_page_rows(cfg.d_head(), page_rows);
        let mut pairs = vec![(
            DecoderCache::new_in_pool(store, params, cfg, enc, &pool),
            DecoderCache::new_contiguous(store, params, cfg, enc),
        )];
        for ((kind, tok), idx) in ops {
            let i = idx % pairs.len();
            match kind {
                0 | 1 => {
                    let (paged, reference) = &mut pairs[i];
                    if paged.len() + 1 >= cfg.max_dec_len {
                        continue; // at capacity; stepping would panic
                    }
                    let lp = decode_step(store, params, cfg, paged, tok);
                    let lr = decode_step(store, params, cfg, reference, tok);
                    prop_assert_eq!(lp, lr, "cache {} diverged", i);
                }
                2 => {
                    if pairs.len() < 6 {
                        let fork = (pairs[i].0.clone(), pairs[i].1.clone());
                        pairs.push(fork);
                    }
                }
                _ => {
                    if pairs.len() > 1 {
                        pairs.swap_remove(i);
                    }
                }
            }
        }
        // Survivors must still agree after the churn.
        for (paged, reference) in &mut pairs {
            if paged.len() + 1 < cfg.max_dec_len {
                let lp = decode_step(store, params, cfg, paged, 5);
                let lr = decode_step(store, params, cfg, reference, 5);
                prop_assert_eq!(lp, lr, "post-churn divergence");
            }
        }
        drop(pairs);
        prop_assert_eq!(pool.stats().pages_live, 0, "pages leaked after churn");
    }
}

proptest! {
    // The scheduler property decodes up to 6 requests per case; fewer cases
    // keep the default run fast (CI elevates via PROPTEST_CASES).
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 3: random request schedules through `BatchDecoder` —
    /// arbitrary prompts, caps, beam widths, late joins — match the
    /// contiguous single-request reference exactly, and the pool drains.
    /// Each schedule runs **twice**: once in f32 and once through an
    /// `Int8` scheduler against the contiguous-quant reference —
    /// quantization must not break the storage-equivalence invariant.
    #[test]
    fn random_schedules_match_single_request_reference(
        specs in proptest::collection::vec(
            (
                (proptest::collection::vec(6usize..24, 0..4), 2usize..28),
                (0usize..4, 1usize..5),
                (0usize..6, 0usize..3),
            ),
            1..7,
        ),
    ) {
        let (cfg, store, params, encs, _) = fixture();
        let max_batch = 8usize; // ≥ the widest generated beam

        struct Spec {
            prompt: Vec<usize>,
            max_len: usize,
            opts: DecodeOptions,
            join: usize,
            src: usize,
        }
        let specs: Vec<Spec> = specs
            .into_iter()
            .map(|((extra, max_len), (min_len, beam), (join, src))| Spec {
                prompt: std::iter::once(SOS).chain(extra).collect(),
                max_len,
                opts: DecodeOptions { beam, min_len, ..Default::default() },
                join,
                src,
            })
            .collect();

        for precision in [Precision::F32, Precision::Int8] {
            let mut dec =
                BatchDecoder::with_precision(store, params, cfg, max_batch, precision);
            let pool = dec.pool().clone();
            let opts_at = |s: &Spec| DecodeOptions { precision, ..s.opts };

            let references: Vec<Vec<usize>> = specs
                .iter()
                .map(|s| {
                    decode_encoded_prompted_contiguous(
                        store, params, cfg, &encs[s.src], &s.prompt, s.max_len, opts_at(s),
                    )
                })
                .collect();

            // Late joins: requests are submitted at their join step while
            // the scheduler is already decoding earlier ones.
            let mut tickets: Vec<Option<RequestId>> = vec![None; specs.len()];
            let last_join = specs.iter().map(|s| s.join).max().unwrap_or(0);
            for t in 0..=last_join {
                for (i, s) in specs.iter().enumerate() {
                    if s.join == t {
                        tickets[i] = Some(dec.submit(BatchRequest {
                            enc_out: encs[s.src].clone(),
                            prompt: s.prompt.clone(),
                            max_len: s.max_len,
                            opts: opts_at(s),
                            submit: SubmitOptions::default(),
                        }));
                    }
                }
                dec.step();
            }
            dec.run();

            for (i, (ticket, want)) in tickets.iter().zip(&references).enumerate() {
                let got = dec
                    .poll(ticket.expect("submitted"))
                    .into_output()
                    .expect("retired");
                prop_assert_eq!(
                    &got, want,
                    "{:?} request {} (beam={} prompt_len={} max_len={})",
                    precision, i, specs[i].opts.beam, specs[i].prompt.len(), specs[i].max_len
                );
            }
            drop(dec);
            prop_assert_eq!(
                pool.stats().pages_live, 0,
                "{:?} scheduler leaked pages", precision
            );
        }
    }
}

proptest! {
    // Each case decodes two whole families per precision; few default
    // cases keep tier-1 fast (CI elevates via PROPTEST_CASES).
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property 4: radix prefix sharing is bitwise-transparent. A family
    /// of near-identical prompts — one encoder output, random single-token
    /// edits of a shared base — decodes exactly like the contiguous
    /// single-request reference whether the members run concurrently (the
    /// scheduler may share pages mid-flight) or sequenced. The sequenced
    /// order makes the accounting deterministic: only the first member
    /// prefills cold; every later member finds the encoder group and
    /// shares at least the cross-attention projection (plus any
    /// page-aligned token prefix). The pool drains to zero either way.
    #[test]
    fn near_identical_prompt_families_share_bitwise(
        base_extra in proptest::collection::vec(6usize..24, 4..20),
        edits in proptest::collection::vec((1usize..20, 6usize..24), 1..5),
        src in 0usize..3,
    ) {
        let (cfg, store, params, encs, _) = fixture();
        let base: Vec<usize> = std::iter::once(SOS).chain(base_extra).collect();
        let mut family = vec![base.clone()];
        for (pos, val) in edits {
            let mut p = base.clone();
            let at = 1 + pos % (p.len() - 1);
            p[at] = val;
            family.push(p);
        }
        let max_len = (base.len() + 6).min(cfg.max_dec_len);
        for precision in [Precision::F32, Precision::Int8] {
            let opts = DecodeOptions { precision, ..Default::default() };
            let references: Vec<Vec<usize>> = family
                .iter()
                .map(|p| decode_encoded_prompted_contiguous(
                    store, params, cfg, &encs[src], p, max_len, opts,
                ))
                .collect();
            let request = |p: &Vec<usize>| BatchRequest {
                enc_out: encs[src].clone(),
                prompt: p.clone(),
                max_len,
                opts,
                submit: SubmitOptions::default(),
            };

            // Concurrent: the whole family in one batch. What gets shared
            // mid-flight is scheduler-internal; the tokens must not depend
            // on it.
            let mut dec = BatchDecoder::with_precision(store, params, cfg, 8, precision);
            let pool = dec.pool().clone();
            let got = dec.decode_all(family.iter().map(request).collect());
            prop_assert_eq!(
                &got, &references,
                "{:?}: concurrent radix sharing changed tokens", precision
            );
            drop(dec);
            prop_assert_eq!(
                pool.stats().pages_live, 0,
                "{:?}: concurrent family leaked pages", precision
            );

            // Sequenced: each member's retained prefill exists before the
            // next lookup, so the hit accounting is deterministic.
            let mut dec = BatchDecoder::with_precision(store, params, cfg, 8, precision);
            let pool = dec.pool().clone();
            for (p, want) in family.iter().zip(&references) {
                let id = dec.submit(request(p));
                dec.run();
                let got = dec.poll(id).into_output().expect("retired");
                prop_assert_eq!(
                    &got, want,
                    "{:?}: sequenced radix sharing changed tokens", precision
                );
            }
            let s = dec.prefix_stats();
            prop_assert_eq!(
                s.misses, 1,
                "{:?}: only the first family member prefills cold", precision
            );
            prop_assert_eq!(
                s.hits + s.partial_hits, family.len() as u64 - 1,
                "{:?}: every later member shares through the index", precision
            );
            drop(dec);
            prop_assert_eq!(
                pool.stats().pages_live, 0,
                "{:?}: sequenced family leaked pages", precision
            );
        }
    }
}
