//! Integration: the metric definitions of paper §VI-A, checked against
//! hand-constructed scenarios that mirror Figure 6, plus the Table II / III
//! aggregation paths.

use mpirical_metrics::{
    align, align_counts, classification_report, corpus_bleu, corpus_meteor, corpus_rouge_l,
    exact_match_accuracy, table_two, CallSite, Counts, EvalExample, Prf,
};

const CC: [&str; 8] = [
    "MPI_Finalize",
    "MPI_Comm_rank",
    "MPI_Comm_size",
    "MPI_Init",
    "MPI_Recv",
    "MPI_Send",
    "MPI_Reduce",
    "MPI_Bcast",
];

fn c(name: &str, line: u32) -> CallSite {
    CallSite::new(name, line)
}

#[test]
fn figure6_scenario() {
    // Ground truth: Init@4, Comm_rank@5, Send@9, Finalize@14.
    let truth = vec![
        c("MPI_Init", 4),
        c("MPI_Comm_rank", 5),
        c("MPI_Send", 9),
        c("MPI_Finalize", 14),
    ];
    // Prediction: Init@4 (TP), Comm_rank@6 (TP via tolerance),
    // Recv@9 (FP — wrong function), Finalize missing (FN),
    // Bcast@11 (FP — hallucinated).
    let pred = vec![
        c("MPI_Init", 4),
        c("MPI_Comm_rank", 6),
        c("MPI_Recv", 9),
        c("MPI_Bcast", 11),
    ];
    let a = align(&truth, &pred, 1);
    let counts = a.counts();
    assert_eq!(
        counts,
        Counts {
            tp: 2,
            fp: 2,
            fn_: 2
        }
    );
    let prf = Prf::from_counts(counts);
    assert!((prf.precision - 0.5).abs() < 1e-12);
    assert!((prf.recall - 0.5).abs() < 1e-12);
    assert!((prf.f1 - 0.5).abs() < 1e-12);
}

#[test]
fn one_line_tolerance_exact_semantics() {
    // "identical ground-truth MPI function and its corresponding generated
    // function will be considered matching only if there is one line
    // difference between their locations" (§VI-A).
    let truth = vec![c("MPI_Reduce", 10)];
    for (line, expect_tp) in [(9u32, 1usize), (10, 1), (11, 1), (8, 0), (12, 0)] {
        let counts = align_counts(&truth, &[c("MPI_Reduce", line)], 1);
        assert_eq!(counts.tp, expect_tp, "pred at line {line}");
    }
}

#[test]
fn mcc_vs_m_distinction() {
    // Errors on non-common-core functions affect M- but not MCC- metrics.
    let truth = vec![
        c("MPI_Init", 2),
        c("MPI_Allgather", 7),
        c("MPI_Finalize", 9),
    ];
    let pred = vec![c("MPI_Init", 2), c("MPI_Finalize", 9)]; // missed Allgather
    let report = classification_report([(truth.as_slice(), pred.as_slice())], 1, &CC);
    assert_eq!(report.mcc.f1, 1.0, "common core is perfect");
    assert!(report.m.f1 < 1.0, "overall penalized for the miss");
    assert!(report.m.recall < report.m.precision, "miss hits recall");
}

#[test]
fn table_two_paper_shape_holds_for_plausible_outputs() {
    // Simulate a good-but-imperfect model over 20 programs: 90% of calls
    // placed right, occasional wrong token in the body. The Table-II shape
    // must come out: token metrics ≫ exact match, MCC ≥ M.
    let mut examples = Vec::new();
    for i in 0..20u32 {
        let truth_calls = vec![
            c("MPI_Init", 3),
            c("MPI_Comm_rank", 4),
            c("MPI_Reduce", 9 + (i % 3)),
            c("MPI_Finalize", 14),
        ];
        let mut pred_calls = truth_calls.clone();
        if i % 5 == 0 {
            pred_calls.remove(2); // occasionally miss the Reduce
        }
        if i % 7 == 0 {
            pred_calls.push(c("MPI_Allreduce", 9)); // rare hallucination, non-CC
        }
        let truth_tokens: Vec<String> = format!(
            "int main ( ) {{ <nl> MPI_Init ( ) ; <nl> int x{i} = {i} ; <nl> MPI_Finalize ( ) ; <nl> }}"
        )
        .split_whitespace()
        .map(|s| s.to_string())
        .collect();
        let mut pred_tokens = truth_tokens.clone();
        if i % 4 == 0 {
            let n = pred_tokens.len();
            pred_tokens[n - 3] = "0".to_string(); // one-token error
        }
        examples.push(EvalExample {
            truth_calls,
            pred_calls,
            truth_tokens,
            pred_tokens,
        });
    }
    let t = table_two(&examples, 1, &CC);
    assert!(t.m_f1 > 0.8 && t.m_f1 < 1.0, "m_f1 {}", t.m_f1);
    assert!(t.mcc_f1 >= t.m_f1, "MCC no worse than M here");
    assert!(t.bleu > 0.85, "bleu {}", t.bleu);
    assert!(t.rouge_l > 0.9, "rouge {}", t.rouge_l);
    assert!(t.acc <= 0.8, "exact match is the hardest: {}", t.acc);
    assert!(t.bleu > t.acc, "paper's signature gap");
}

#[test]
fn translation_metrics_consistency() {
    let toks = |s: &str| -> Vec<String> { s.split_whitespace().map(|x| x.to_string()).collect() };
    let pairs = vec![
        (toks("a b c d e"), toks("a b c d e")),
        (toks("a b c d e"), toks("a b x d e")),
        (toks("a b c d e"), toks("f g h i j")),
    ];
    let bleu = corpus_bleu(&pairs);
    let rouge = corpus_rouge_l(&pairs);
    let meteor = corpus_meteor(&pairs);
    let acc = exact_match_accuracy(&pairs);
    assert!((acc - 1.0 / 3.0).abs() < 1e-12);
    for v in [bleu, rouge, meteor] {
        assert!((0.0..=1.0).contains(&v));
        assert!(v > acc * 0.9, "token metrics dominate exact match");
    }
}
