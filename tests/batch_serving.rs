//! End-to-end batched serving through the public API: one trained
//! assistant, many concurrent suggestion requests, outputs pinned to the
//! sequential path — including the v2 lifecycle (priorities, preemption,
//! streaming polls, cancellation).

use mpirical::{MpiRical, MpiRicalConfig, SubmitOptions, SuggestPoll, SuggestService, Suggestion};
use mpirical_corpus::{generate_dataset, CorpusConfig};
use mpirical_model::ModelConfig;

/// One tiny trained assistant shared by the whole file (training dominates
/// test wall-clock, so do it once).
fn tiny_assistant() -> MpiRical {
    let ccfg = CorpusConfig {
        programs: 40,
        seed: 55,
        max_tokens: 320,
        threads: 1,
    };
    let (_, ds, _) = generate_dataset(&ccfg);
    let splits = ds.split(3);
    let mut cfg = MpiRicalConfig {
        model: ModelConfig::tiny(),
        vocab_min_freq: 1,
        ..Default::default()
    };
    cfg.model.max_enc_len = 256;
    cfg.model.max_dec_len = 230;
    cfg.train.epochs = 1;
    cfg.train.batch_size = 8;
    cfg.train.threads = 1;
    cfg.train.validate = false;
    MpiRical::train(&splits.train, &splits.val, &cfg, |_| {}).0
}

/// Redeem a ticket that must be finished.
fn take(service: &mut SuggestService, id: mpirical::RequestId) -> Vec<Suggestion> {
    match service.poll(id) {
        SuggestPoll::Done { suggestions, .. } => suggestions,
        other => panic!("{id} not finished: {other:?}"),
    }
}

#[test]
fn batched_serving_is_equivalent_and_continuous() {
    let assistant = tiny_assistant();
    let buffers = [
        "int main() { int rank; printf(\"a\\n\"); return 0; }",
        "int main(int argc, char **argv) { double local = 0.0; return 0; }",
        "int main() { int size; int i; for (i = 0; i < 4; i++) {} return 0; }",
        "int main() { int x = 1; if (x", // mid-edit, unparseable tail
        "int main() { return 0; }",
    ];
    let sequential: Vec<_> = buffers.iter().map(|b| assistant.suggest(b)).collect();

    // One-shot batched API: same results, input order preserved.
    assert_eq!(assistant.suggest_batch(&buffers), sequential);

    // Submit/poll service with fewer lanes than requests (forces the
    // continuous-batching queue) and a late join mid-decode.
    let mut service = SuggestService::with_max_batch(&assistant, 2);
    let early: Vec<_> = buffers[..4].iter().map(|b| service.submit(b)).collect();
    for _ in 0..3 {
        service.step();
    }
    let late = service.submit(buffers[4]);
    assert!(service.pending() > 0);
    service.run();
    for (ticket, want) in early.into_iter().zip(&sequential[..4]) {
        assert_eq!(&take(&mut service, ticket), want);
    }
    assert_eq!(&take(&mut service, late), &sequential[4]);
    assert_eq!(service.pending(), 0);
}

#[test]
fn service_ticket_lifecycle_edge_cases() {
    let assistant = tiny_assistant();
    let buffers = [
        "int main() { int rank; return 0; }",
        "int main() { double local = 0.0; return 0; }",
        "int main() { int size; return 0; }",
    ];
    let sequential: Vec<_> = buffers.iter().map(|b| assistant.suggest(b)).collect();

    // One lane, three requests: overflow queues, tickets stay unique.
    let mut service = SuggestService::with_max_batch(&assistant, 1);
    let t0 = service.submit(buffers[0]);
    let t1 = service.submit(buffers[1]);
    assert_ne!(t0, t1, "tickets never collide");
    assert_eq!(
        service.poll(t0),
        SuggestPoll::Queued { position: 0 },
        "poll before any decoding reports the queue position"
    );
    assert_eq!(service.poll(t1), SuggestPoll::Queued { position: 1 });
    service.run();

    // Poll-after-retire survives later churn through the same lane…
    let t2 = service.submit(buffers[2]);
    service.run();
    assert_eq!(take(&mut service, t0), sequential[0]);
    assert_eq!(take(&mut service, t2), sequential[2]);
    assert_eq!(take(&mut service, t1), sequential[1]);
    // …and every ticket redeems exactly once: afterwards the state is
    // `Unknown` (distinguishable from a pending request — the v1 poll
    // ambiguity this API redesign removed).
    for t in [t0, t1, t2] {
        assert_eq!(service.poll(t), SuggestPoll::Unknown, "already redeemed");
    }
}

#[test]
fn service_reports_paged_pool_and_prefix_sharing() {
    let assistant = tiny_assistant();
    let buffer = "int main() { int rank; printf(\"a\\n\"); return 0; }";
    let expected = assistant.suggest(buffer);

    let mut service = SuggestService::with_max_batch(&assistant, 2);
    assert_eq!(service.pool_stats().pages_live, 0);
    let first = service.submit(buffer);
    service.run();
    let after_first = service.pool_stats();
    assert!(after_first.pages_peak > 0, "decoding allocated pages");
    assert_eq!(after_first.pages_live, 0, "retired lanes free their pages");

    // The IDE-retrigger pattern: the identical buffer resubmitted twice
    // shares its prefill pages instead of re-projecting them.
    let again = service.submit(buffer);
    let thrice = service.submit(buffer);
    service.run();
    assert_eq!(service.prefix_hits(), 2);
    for t in [first, again, thrice] {
        assert_eq!(take(&mut service, t), expected);
    }
}

/// The v2 lifecycle end to end through the public API: a bulk re-index
/// job saturates the lane, a keystroke-triggered request preempts it and
/// streams partial suggestions, a stale request is cancelled, and every
/// surviving output still equals the artifact's own sequential `suggest`.
#[test]
fn serving_v2_priorities_preemption_and_cancellation_end_to_end() {
    let assistant = tiny_assistant();
    let bulk_buf = "int main(int argc, char **argv) { double local = 0.0; return 0; }";
    let key_buf = "int main() { int rank; printf(\"a\\n\"); return 0; }";
    let stale_buf = "int main() { int size; return 0; }";
    let bulk_want = assistant.suggest(bulk_buf);
    let key_want = assistant.suggest(key_buf);

    let mut service = SuggestService::with_max_batch(&assistant, 1);
    let bulk = service.submit_with(bulk_buf, SubmitOptions::bulk());
    let stale = service.submit_with(stale_buf, SubmitOptions::bulk());
    for _ in 0..3 {
        service.step();
    }
    assert!(matches!(service.poll(bulk), SuggestPoll::Decoding { .. }));

    // The developer pauses typing: an interactive request arrives, the
    // bulk job yields its lane within one step.
    let keystroke = service.submit(key_buf);
    service.step();
    assert!(
        matches!(service.poll(keystroke), SuggestPoll::Decoding { .. }),
        "keystroke request decodes on the very next step"
    );
    assert!(
        matches!(service.poll(bulk), SuggestPoll::Queued { .. }),
        "preempted bulk job is paused with its pages intact"
    );
    assert_eq!(service.preemptions(), 1);

    // The stale request's buffer was closed — cancel it from the queue.
    assert!(service.cancel(stale));

    // Streaming: partial suggestions only ever grow; the client captures
    // the result the step it appears (a `Done` poll redeems the ticket).
    let mut last_partial = 0usize;
    let mut keystroke_done = None;
    while service.step() > 0 {
        match service.poll(keystroke) {
            SuggestPoll::Decoding { partial } => {
                assert!(partial.len() >= last_partial, "partial output only grows");
                last_partial = partial.len();
            }
            SuggestPoll::Done {
                suggestions,
                telemetry,
                ..
            } => keystroke_done = Some((suggestions, telemetry)),
            SuggestPoll::Unknown if keystroke_done.is_some() => {} // redeemed above
            other => panic!("unexpected keystroke state: {other:?}"),
        }
    }
    let (suggestions, telemetry) = keystroke_done.expect("keystroke finished mid-loop");
    assert_eq!(suggestions, key_want);
    assert_eq!(
        telemetry.queue_wait_steps, 0,
        "preemption admitted it at once"
    );

    let SuggestPoll::Done {
        suggestions,
        telemetry,
        ..
    } = service.poll(bulk)
    else {
        panic!("bulk finished");
    };
    assert_eq!(
        suggestions, bulk_want,
        "preempt/resume never changes output"
    );
    assert_eq!(telemetry.preemptions, 1);

    assert_eq!(service.poll(stale), SuggestPoll::Cancelled);
    assert_eq!(service.poll(stale), SuggestPoll::Unknown, "redeems once");
    assert_eq!(service.pool_stats().pages_live, 0, "cancel leaks no pages");
}

/// An int8-configured artifact serves end to end through the public API:
/// the one-shot batch path and the submit/poll service both run the
/// quantized lockstep kernels and agree exactly with the artifact's own
/// single-request quantized `suggest` — on a *trained* assistant, whose
/// confident logits make the agreement exact, not statistical.
#[test]
fn int8_artifact_serves_equivalently_through_batch_and_service() {
    let mut assistant = tiny_assistant();
    assistant.decode.precision = mpirical::Precision::Int8;
    let buffers = [
        "int main() { int rank; printf(\"a\\n\"); return 0; }",
        "int main(int argc, char **argv) { double local = 0.0; return 0; }",
        "int main() { int x = 1; if (x", // mid-edit, unparseable tail
    ];
    let sequential: Vec<_> = buffers.iter().map(|b| assistant.suggest(b)).collect();
    assert_eq!(assistant.suggest_batch(&buffers), sequential);

    let mut service = SuggestService::with_max_batch(&assistant, 2);
    let tickets: Vec<_> = buffers.iter().map(|b| service.submit(b)).collect();
    service.run();
    for (ticket, want) in tickets.into_iter().zip(&sequential) {
        assert_eq!(&take(&mut service, ticket), want);
    }
    assert_eq!(
        service.pool_stats().pages_live,
        0,
        "pages freed after retiring"
    );
}
