//! End-to-end batched serving through the public API: one trained
//! assistant, many concurrent suggestion requests, outputs pinned to the
//! sequential path.

use mpirical::{MpiRical, MpiRicalConfig, SuggestService};
use mpirical_corpus::{generate_dataset, CorpusConfig};
use mpirical_model::ModelConfig;

/// One tiny trained assistant shared by the whole file (training dominates
/// test wall-clock, so do it once).
fn tiny_assistant() -> MpiRical {
    let ccfg = CorpusConfig {
        programs: 40,
        seed: 55,
        max_tokens: 320,
        threads: 1,
    };
    let (_, ds, _) = generate_dataset(&ccfg);
    let splits = ds.split(3);
    let mut cfg = MpiRicalConfig {
        model: ModelConfig::tiny(),
        vocab_min_freq: 1,
        ..Default::default()
    };
    cfg.model.max_enc_len = 256;
    cfg.model.max_dec_len = 230;
    cfg.train.epochs = 1;
    cfg.train.batch_size = 8;
    cfg.train.threads = 1;
    cfg.train.validate = false;
    MpiRical::train(&splits.train, &splits.val, &cfg, |_| {}).0
}

#[test]
fn batched_serving_is_equivalent_and_continuous() {
    let assistant = tiny_assistant();
    let buffers = [
        "int main() { int rank; printf(\"a\\n\"); return 0; }",
        "int main(int argc, char **argv) { double local = 0.0; return 0; }",
        "int main() { int size; int i; for (i = 0; i < 4; i++) {} return 0; }",
        "int main() { int x = 1; if (x", // mid-edit, unparseable tail
        "int main() { return 0; }",
    ];
    let sequential: Vec<_> = buffers.iter().map(|b| assistant.suggest(b)).collect();

    // One-shot batched API: same results, input order preserved.
    assert_eq!(assistant.suggest_batch(&buffers), sequential);

    // Submit/poll service with fewer lanes than requests (forces the
    // continuous-batching queue) and a late join mid-decode.
    let mut service = SuggestService::with_max_batch(&assistant, 2);
    let early: Vec<_> = buffers[..4].iter().map(|b| service.submit(b)).collect();
    for _ in 0..3 {
        service.step();
    }
    let late = service.submit(buffers[4]);
    assert!(service.pending() > 0);
    service.run();
    for (ticket, want) in early.into_iter().zip(&sequential[..4]) {
        assert_eq!(service.poll(ticket).as_ref(), Some(want));
    }
    assert_eq!(service.poll(late).as_ref(), Some(&sequential[4]));
    assert_eq!(service.pending(), 0);
}
