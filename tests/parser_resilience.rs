//! Fault-injection harness for the resilient front-end.
//!
//! The paper's deployment scenario (§I, §VII) is an assistant watching a
//! buffer *while the developer types*: the front-end sees truncated,
//! unbalanced, half-deleted programs far more often than clean ones. This
//! suite injects single-edit faults into every benchmark11 program and
//! proptest-random sources, and asserts the three contracts the resilient
//! parser promises:
//!
//! 1. **Totality** — no mutation panics anywhere in
//!    lex → parse → print → X-SBT → encode → suggest; every call returns.
//! 2. **Bounded blast radius** — corrupting one function never changes how
//!    its neighbors parse: top-level items outside the mutated region are
//!    bit-identical to the clean parse (matklad-style top-level anchoring).
//! 3. **Line stability** — source lines outside the reported dirty ranges
//!    keep their numbers, so RQ2-style line anchors survive mid-edit states.
//!
//! The model-dependent stages run against a deliberately *untrained* tiny
//! artifact: resilience is a front-end property, and an untrained
//! transformer exercises the same code paths at a fraction of the cost. The
//! truncation sweep runs the **full** `suggest` path at every token
//! boundary of every program by default; the larger mutation corpora go
//! through the front-end stages by default and through full `suggest` when
//! `RESILIENCE_FULL=1` (the CI mutation-corpus smoke step).

use mpirical::cparse::{
    lex, parse_tolerant, print_program, Item, Program, Punct, Token, TokenKind,
};
use mpirical::model::{DecodeOptions, ModelConfig, Seq2SeqModel, Vocab};
use mpirical::{benchmark_programs, tokenize_code, InputFormat, MpiRical};
use proptest::prelude::*;
use std::sync::OnceLock;

/// An untrained tiny artifact: real vocab (built from the benchmark
/// corpus), real encoder/decoder weights (random), tiny shapes so the
/// exhaustive sweeps stay cheap. Shared across tests.
fn untrained_assistant() -> &'static MpiRical {
    static SHARED: OnceLock<MpiRical> = OnceLock::new();
    SHARED.get_or_init(|| {
        let token_seqs: Vec<Vec<String>> = benchmark_programs()
            .iter()
            .map(|p| tokenize_code(p.source))
            .collect();
        let vocab = Vocab::build(token_seqs.iter(), 1, 4096);
        let mut cfg = ModelConfig::tiny();
        cfg.max_enc_len = 96; // encode_source truncates longer inputs
        cfg.max_dec_len = 4; // decode cost per mutation stays trivial
        MpiRical::from_parts(
            Seq2SeqModel::new(cfg, vocab, 7),
            InputFormat::CodeXsbt,
            DecodeOptions::default(),
            None,
        )
    })
}

/// Rebuild source text from a (possibly mutated) token slice, preserving
/// each token's original line number — blank lines are re-inserted for
/// gaps, so line-anchored assertions survive token-level mutations.
fn reconstruct(tokens: &[Token]) -> String {
    let mut out = String::new();
    let mut line = 1u32;
    let mut first_on_line = true;
    for t in tokens {
        if matches!(t.kind, TokenKind::Eof) {
            break;
        }
        while line < t.line {
            out.push('\n');
            line += 1;
            first_on_line = true;
        }
        if !first_on_line {
            out.push(' ');
        }
        out.push_str(&t.kind.render());
        first_on_line = false;
    }
    out.push('\n');
    out
}

/// Code tokens of `src` (EOF dropped).
fn code_tokens(src: &str) -> Vec<Token> {
    let mut toks = lex(src).tokens;
    toks.retain(|t| !matches!(t.kind, TokenKind::Eof));
    toks
}

/// Run the whole front-end on a mutated buffer and return the suggestion
/// count — the totality assertion is that this function *returns*.
fn front_end_total(src: &str) -> usize {
    let out = parse_tolerant(src);
    let printed = print_program(&out.program);
    let reparsed = parse_tolerant(&printed);
    let _xsbt = mpirical::xsbt::xsbt(&reparsed.program);
    let enc = untrained_assistant().encode_source(src);
    enc.ids.len()
}

/// Full pipeline through model decode — the expensive totality check.
fn full_suggest_total(src: &str) {
    let report = untrained_assistant().suggest_report(src);
    // Degraded inputs must be *flagged*, not hidden: if the parse needed
    // recovery, the health says so.
    let parsed = parse_tolerant(src);
    if parsed.recoveries > 0 {
        assert!(
            !report.health.is_clean(),
            "recovered parse reported clean health for {src:?}"
        );
    }
}

/// Print a single top-level item through the canonical printer.
fn print_item(item: &Item) -> String {
    print_program(&Program {
        directives: vec![],
        items: vec![item.clone()],
    })
}

/// Named functions of a parse, as (name, canonical text) pairs.
fn function_texts(program: &Program) -> Vec<(String, String)> {
    program
        .items
        .iter()
        .filter_map(|i| match i {
            Item::Function(f) => Some((f.name.clone(), print_item(i))),
            _ => None,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// 1. Totality sweeps
// ---------------------------------------------------------------------------

/// Every benchmark11 program, cut at **every token boundary**, through the
/// full `suggest` path: never panics, always returns, degraded states are
/// flagged via `ParseHealth`. (The satellite acceptance sweep.)
#[test]
fn truncation_sweep_full_suggest_never_panics() {
    for p in benchmark_programs() {
        let tokens = code_tokens(p.source);
        for cut in 0..=tokens.len() {
            let src = reconstruct(&tokens[..cut]);
            full_suggest_total(&src);
        }
        // The full reconstruction is the same token stream — it must
        // round-trip to a clean parse.
        let full = reconstruct(&tokens);
        assert!(
            untrained_assistant()
                .suggest_report(&full)
                .health
                .is_clean(),
            "{}: clean program reported dirty health",
            p.name
        );
    }
}

/// Delete each token in turn; the front-end survives every single-token
/// deletion of every benchmark program. With `RESILIENCE_FULL=1` the sweep
/// additionally runs full `suggest` per mutation.
#[test]
fn token_deletion_sweep_is_total() {
    let full = std::env::var("RESILIENCE_FULL").is_ok_and(|v| v == "1");
    for p in benchmark_programs() {
        let tokens = code_tokens(p.source);
        for i in 0..tokens.len() {
            let mut mutated = tokens.clone();
            mutated.remove(i);
            let src = reconstruct(&mutated);
            front_end_total(&src);
            if full {
                full_suggest_total(&src);
            }
        }
    }
}

/// Unbalance every brace: delete each `{`/`}`, and duplicate each `}`.
#[test]
fn brace_unbalance_sweep_is_total() {
    let full = std::env::var("RESILIENCE_FULL").is_ok_and(|v| v == "1");
    for p in benchmark_programs() {
        let tokens = code_tokens(p.source);
        let mut mutants: Vec<Vec<Token>> = Vec::new();
        for (i, t) in tokens.iter().enumerate() {
            if t.is_punct(Punct::LBrace) || t.is_punct(Punct::RBrace) {
                let mut m = tokens.clone();
                m.remove(i);
                mutants.push(m);
            }
            if t.is_punct(Punct::RBrace) {
                let mut m = tokens.clone();
                m.insert(i, t.clone());
                mutants.push(m);
            }
        }
        assert!(!mutants.is_empty(), "{}: no braces?", p.name);
        for m in mutants {
            let src = reconstruct(&m);
            front_end_total(&src);
            if full {
                full_suggest_total(&src);
            }
        }
    }
}

/// Cut the source immediately after every `"` — unterminated string
/// literals (the classic mid-edit state) never escape the lexer's
/// recovery.
#[test]
fn unterminated_string_truncations_are_total() {
    for p in benchmark_programs() {
        for (pos, ch) in p.source.char_indices() {
            if ch == '"' {
                let src = &p.source[..pos + 1];
                front_end_total(src);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Blast radius: one broken function never consumes its neighbors
// ---------------------------------------------------------------------------

const HELPER_BEFORE: &str = "int rb_before(int a) {\n    int t = a + 1;\n    return t;\n}\n";
const HELPER_AFTER: &str = "int rb_after(int b) {\n    int u = b * 2;\n    return u;\n}\n";

/// Single-edit corruptions of one text segment. Each returns `None` when
/// the segment lacks the character it wants to break.
fn corruptions(seg: &str) -> Vec<(&'static str, String)> {
    let mut out = Vec::new();
    if let Some(i) = seg.rfind('}') {
        out.push((
            "drop-last-closer",
            format!("{}{}", &seg[..i], &seg[i + 1..]),
        ));
    }
    if let Some(i) = seg.find('{') {
        out.push((
            "drop-first-opener",
            format!("{}{}", &seg[..i], &seg[i + 1..]),
        ));
    }
    if let Some(i) = seg.find('(') {
        out.push((
            "stray-closer",
            format!("{})){}", &seg[..i + 1], &seg[i + 1..]),
        ));
    }
    // Inject an unparseable statement after the midpoint's line break.
    if let Some(off) = seg[seg.len() / 2..].find('\n') {
        let at = seg.len() / 2 + off + 1;
        out.push((
            "inject-garbage",
            format!("{}= = broken\n{}", &seg[..at], &seg[at..]),
        ));
    }
    // Truncate mid-function (snap to a line break so we cut whole lines).
    if let Some(off) = seg[seg.len() / 2..].find('\n') {
        let at = seg.len() / 2 + off + 1;
        out.push(("truncate-half", seg[..at].to_string()));
    }
    if let Some(i) = seg.find('"') {
        out.push(("unterminate-string", seg[..i + 1].to_string()));
    }
    out
}

/// Corrupt one of three concatenated regions (helper / benchmark program /
/// helper) every way `corruptions` knows, and assert every function
/// *outside* the corrupted region parses bit-identical to the clean parse.
#[test]
fn blast_radius_bounded_to_mutated_function() {
    for p in benchmark_programs() {
        let segments = [HELPER_BEFORE, p.source, HELPER_AFTER];
        let clean_src = segments.join("\n");
        let clean = parse_tolerant(&clean_src);
        assert!(
            clean.health().is_clean(),
            "{}: combined clean source must parse clean",
            p.name
        );
        let clean_fns = function_texts(&clean.program);
        // Which function names live in which segment?
        let seg_names: Vec<Vec<String>> = segments
            .iter()
            .map(|s| {
                parse_tolerant(s)
                    .program
                    .functions()
                    .map(|f| f.name.clone())
                    .collect()
            })
            .collect();
        for victim in 0..segments.len() {
            for (kind, corrupted) in corruptions(segments[victim]) {
                let mut parts: Vec<&str> = segments.to_vec();
                parts[victim] = &corrupted;
                let src = parts.join("\n");
                let out = parse_tolerant(&src);
                let got = function_texts(&out.program);
                for (name, text) in &clean_fns {
                    if seg_names[victim].contains(name) {
                        continue; // the victim itself may be degraded
                    }
                    let survived: Vec<&String> = got
                        .iter()
                        .filter(|(n, _)| n == name)
                        .map(|(_, t)| t)
                        .collect();
                    assert_eq!(
                        survived,
                        vec![text],
                        "{}: corrupting segment {victim} ({kind}) changed \
                         untouched function `{name}`",
                        p.name
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Line stability outside the dirty range
// ---------------------------------------------------------------------------

/// Lines whose content can be replaced in place without multi-line
/// consequences: simple one-line statements.
fn replaceable_lines(src: &str) -> Vec<usize> {
    src.lines()
        .enumerate()
        .filter(|(_, l)| {
            let t = l.trim();
            t.ends_with(';')
                && !t.is_empty()
                && !t.contains('{')
                && !t.contains('}')
                && !t.starts_with('#')
                && ["if", "for", "while", "do", "else"]
                    .iter()
                    .all(|kw| !t.starts_with(kw))
        })
        .map(|(i, _)| i)
        .collect()
}

/// Replace single statement lines with garbage **in place** (same line
/// count): the mutated line must be reported dirty, every MPI call off
/// that line must keep its exact clean-parse line number, and the
/// canonical print must keep the clean print's line count (the RQ2
/// anchoring contract).
#[test]
fn line_numbers_stable_outside_dirty_ranges() {
    for p in benchmark_programs() {
        let clean = parse_tolerant(p.source);
        let clean_calls = clean.program.calls_matching(|n| n.starts_with("MPI_"));
        let clean_print_lines = print_program(&clean.program).lines().count();
        for idx in replaceable_lines(p.source) {
            // `= = =` routes entirely into one Error node (an identifier
            // would re-parse as a bare expression statement under the
            // missing-`;` tolerance and legitimately print on its own line).
            let mutated_src: String = p
                .source
                .lines()
                .enumerate()
                .map(|(i, l)| if i == idx { "    = = =" } else { l })
                .collect::<Vec<_>>()
                .join("\n");
            let out = parse_tolerant(&mutated_src);
            let health = out.health();
            let dirty_line = (idx + 1) as u32;
            assert!(
                health.is_dirty_line(dirty_line),
                "{}: line {dirty_line} replaced by garbage but not dirty",
                p.name
            );
            // Calls outside the dirty ranges match the clean parse exactly.
            for (name, line) in out.program.calls_matching(|n| n.starts_with("MPI_")) {
                if health.is_dirty_line(line) {
                    continue;
                }
                assert!(
                    clean_calls.contains(&(name.clone(), line)),
                    "{}: call {name} moved to line {line} after mutating \
                     line {dirty_line}",
                    p.name
                );
            }
            // Every clean call off the mutated line is still found, at the
            // same line (deletion would shrink coverage silently).
            for (name, line) in &clean_calls {
                if *line == dirty_line {
                    continue;
                }
                assert!(
                    out.program
                        .calls_matching(|n| n.starts_with("MPI_"))
                        .contains(&(name.clone(), *line)),
                    "{}: call {name} at line {line} lost after mutating \
                     line {dirty_line}",
                    p.name
                );
            }
            // The printer preserves the error region's line count, so the
            // canonical (standardized) text keeps its shape too.
            assert_eq!(
                print_program(&out.program).lines().count(),
                clean_print_lines,
                "{}: canonical line count drifted after mutating line \
                 {dirty_line}",
                p.name
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 4. Clean-path guardrails
// ---------------------------------------------------------------------------

/// Recovery machinery must be invisible on clean code: every benchmark
/// program parses with zero recoveries and clean health through the full
/// report path.
#[test]
fn clean_programs_report_clean_health() {
    for p in benchmark_programs() {
        let out = parse_tolerant(p.source);
        assert_eq!(
            out.recoveries, 0,
            "{}: recovery fired on clean code",
            p.name
        );
        assert!(out.health().is_clean(), "{}: dirty health", p.name);
        let report = untrained_assistant().suggest_report(p.source);
        assert!(report.health.is_clean(), "{}: dirty report", p.name);
        assert!(
            report.suggestions.iter().all(|s| !s.degraded),
            "{}: clean parse produced degraded suggestions",
            p.name
        );
    }
}

// ---------------------------------------------------------------------------
// 5. Random-source totality (proptest; honors PROPTEST_CASES)
// ---------------------------------------------------------------------------

/// Source-like strings biased toward the shapes mid-edit buffers take:
/// partial headers, unbalanced delimiters, directives, half-typed calls.
fn arb_source() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("int ".to_string()),
            Just("double ".to_string()),
            Just("main".to_string()),
            Just("x".to_string()),
            Just(" = ".to_string()),
            Just("1".to_string()),
            Just("3.5".to_string()),
            Just(";".to_string()),
            Just("{".to_string()),
            Just("}".to_string()),
            Just("(".to_string()),
            Just(")".to_string()),
            Just("if ".to_string()),
            Just("for ".to_string()),
            Just("return ".to_string()),
            Just("\"s\"".to_string()),
            Just("\"".to_string()),
            Just("+".to_string()),
            Just(",".to_string()),
            Just("&".to_string()),
            Just("MPI_Send".to_string()),
            Just("MPI_Init".to_string()),
            Just("#include <mpi.h>\n".to_string()),
            Just("\n".to_string()),
            Just("/*".to_string()),
            Just("'c'".to_string()),
        ],
        0..96,
    )
    .prop_map(|parts| parts.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any token soup survives the full path, model decode included, and a
    /// degraded suggestion never appears alongside clean health.
    #[test]
    fn random_sources_total_through_suggest(src in arb_source()) {
        let report = untrained_assistant().suggest_report(&src);
        prop_assert!(
            report.suggestions.iter().all(|s| !s.degraded) || !report.health.is_clean()
        );
    }

    /// Truncating random sources at arbitrary *byte* boundaries (snapped to
    /// char boundaries) is also total — the lexer sees genuinely torn text,
    /// not just token-aligned cuts.
    #[test]
    fn random_byte_truncations_total(src in arb_source(), frac in 0.0f64..1.0) {
        let mut cut = (src.len() as f64 * frac) as usize;
        while cut < src.len() && !src.is_char_boundary(cut) {
            cut += 1;
        }
        front_end_total(&src[..cut.min(src.len())]);
    }
}
