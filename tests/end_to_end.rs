//! End-to-end integration: corpus → dataset → training → suggestion →
//! evaluation, across every crate in the workspace.
//!
//! This is a *small-scale but real* run: it trains a miniature transformer
//! for a few epochs on generated data and checks that the whole system
//! behaves like the paper describes — losses drop, suggestions are
//! well-formed, evaluation metrics are consistent, artifacts roundtrip.

use mpirical::{
    evaluate_dataset, evaluate_dataset_with_tolerance, InputFormat, MpiRical, MpiRicalConfig,
};
use mpirical_corpus::{generate_dataset, CorpusConfig};
use mpirical_model::ModelConfig;

fn train_once() -> (
    MpiRical,
    mpirical_corpus::Splits,
    mpirical_model::TrainReport,
) {
    let ccfg = CorpusConfig {
        programs: 120,
        seed: 2024,
        max_tokens: 320,
        threads: 0,
    };
    let (_, dataset, report) = generate_dataset(&ccfg);
    assert!(report.dataset_records > 20, "enough records: {report:?}");
    let splits = dataset.split(77);

    let mut cfg = MpiRicalConfig {
        model: ModelConfig {
            vocab_size: 0,
            d_model: 32,
            n_heads: 2,
            d_ff: 64,
            n_enc_layers: 1,
            n_dec_layers: 1,
            max_enc_len: 256,
            max_dec_len: 232,
            dropout: 0.0,
        },
        vocab_min_freq: 1,
        input_format: InputFormat::CodeXsbt,
        ..Default::default()
    };
    cfg.train.epochs = 3;
    cfg.train.batch_size = 8;
    cfg.train.threads = 0;
    cfg.train.lr = 1e-3;
    cfg.train.warmup_steps = 10;
    let (assistant, report) = MpiRical::train(&splits.train, &splits.val, &cfg, |_| {});
    (assistant, splits, report)
}

#[test]
fn full_pipeline_learns_and_evaluates() {
    let (assistant, splits, report) = train_once();

    // Figure-5 shape: training loss decreases.
    assert_eq!(report.epochs.len(), 3);
    let first = report.epochs.first().unwrap().train_loss;
    let last = report.epochs.last().unwrap().train_loss;
    assert!(
        last < first,
        "training loss should fall: {first:.3} → {last:.3}"
    );

    // Table-II machinery: evaluation runs and counts are consistent.
    let (eval, preds) = evaluate_dataset(&assistant, &splits.test);
    assert_eq!(eval.evaluated + eval.skipped, splits.test.len());
    assert_eq!(preds.len(), eval.evaluated);

    // Tolerance monotonicity on the real predictions (ablation invariant).
    let (t0, _) = evaluate_dataset_with_tolerance(&assistant, &splits.test, 0);
    let (t2, _) = evaluate_dataset_with_tolerance(&assistant, &splits.test, 2);
    assert!(t0.table.m_recall <= t2.table.m_recall + 1e-12);

    // Suggestions on fresh serial code are well-formed MPI functions.
    let serial = "int main(int argc, char **argv) { int rank, size; double s = 0.0; return 0; }";
    for s in assistant.suggest(serial) {
        assert!(s.function.starts_with("MPI_"), "{}", s.function);
        assert!(s.line >= 1);
    }

    // The translated program detokenizes to non-empty source.
    let translated = assistant.translate(serial);
    assert!(!translated.trim().is_empty());
}

#[test]
fn artifact_roundtrip_preserves_predictions() {
    let (assistant, splits, _) = train_once();
    let dir = std::env::temp_dir().join("mpirical_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("artifact.json");
    assistant.save(&path).unwrap();
    let loaded = MpiRical::load(&path).unwrap();

    for record in splits.test.records.iter().take(3) {
        let a = assistant.predict_record_ids(record);
        let b = loaded.predict_record_ids(record);
        assert_eq!(a, b, "record {}", record.id);
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn xsbt_input_contains_structure_channel() {
    // The encoder input must actually carry the X-SBT channel (paper Fig 1b):
    // code-only and code+xsbt encodings differ for the same record.
    let (assistant, splits, _) = train_once();
    // First test record whose label fits the decoder window.
    let record = splits
        .test
        .records
        .iter()
        .find(|r| {
            mpirical::encode_record(
                r,
                &assistant.model.vocab,
                &assistant.model.cfg,
                InputFormat::CodeXsbt,
            )
            .is_some()
        })
        .expect("at least one encodable test record");
    let with = mpirical::encode_record(
        record,
        &assistant.model.vocab,
        &assistant.model.cfg,
        InputFormat::CodeXsbt,
    )
    .unwrap();
    let without = mpirical::encode_record(
        record,
        &assistant.model.vocab,
        &assistant.model.cfg,
        InputFormat::CodeOnly,
    )
    .unwrap();
    assert!(with.src.len() > without.src.len());
    assert_eq!(with.tgt, without.tgt, "labels are identical");
}
