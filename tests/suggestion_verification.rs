//! Closed-loop suggestion verification: the confusion matrix of the
//! execute-and-classify oracle (`mpirical::verify`), pinned end to end.
//!
//! Three layers of proof:
//!
//! 1. **Fault corpus** — hand-curated programs with known MPI bugs
//!    (recv/recv deadlock cycles, datatype mismatches, wrong-root
//!    collectives, a missing reduction, a runaway loop) must each land in
//!    their exact verdict class, and every correct reference splice for
//!    the benchmark11 set must come back `Verified`.
//! 2. **Re-ranking** — demotion is total across classes but never
//!    reorders two `Verified` candidates relative to pure model score
//!    (stability, property-tested).
//! 3. **Read-only** — enabling verification changes nothing about what
//!    the model produces: suggestion ids are bitwise-identical with
//!    verification on vs off (property-tested through a trained
//!    artifact).

use mpirical::cparse::{parse_strict, parse_tolerant, standardize};
use mpirical::verify::{rerank, verify_prediction, verify_program};
use mpirical::{
    benchmark_programs, MpiRical, MpiRicalConfig, SubmitOptions, SuggestPoll, SuggestService,
    Verdict, VerifyOptions,
};
use mpirical_corpus::{generate_dataset, remove_mpi_calls, CorpusConfig};
use mpirical_model::ModelConfig;
use proptest::prelude::*;
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// 1. Fault corpus: every seeded fault caught, every correct splice verified.
// ---------------------------------------------------------------------------

/// Options for the hand-written fault programs: one 2-rank world, tight
/// timeout (the deadlock cases must not stall the suite).
fn fault_opts() -> VerifyOptions {
    VerifyOptions {
        rank_counts: vec![2],
        timeout_ms: 400,
        step_limit: 200_000,
        ..VerifyOptions::default()
    }
}

/// Classify one complete fault program (the shape a patched suggestion has
/// after splicing).
fn classify(src: &str) -> Verdict {
    let prog = parse_strict(src).expect("fault corpus programs are well-formed C");
    verify_program(&prog, &fault_opts()).0
}

#[test]
fn recv_recv_cycle_is_deadlock() {
    // Both ranks block in MPI_Recv waiting on the other: the classic cycle.
    let verdict = classify(
        "int main(int argc, char **argv) {\n\
         int rank;\n\
         int x = 0;\n\
         MPI_Init(&argc, &argv);\n\
         MPI_Comm_rank(MPI_COMM_WORLD, &rank);\n\
         if (rank == 0) {\n\
         MPI_Recv(&x, 1, MPI_INT, 1, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);\n\
         }\n\
         if (rank == 1) {\n\
         MPI_Recv(&x, 1, MPI_INT, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);\n\
         }\n\
         MPI_Finalize();\n\
         return 0;\n\
         }",
    );
    assert_eq!(verdict, Verdict::Deadlock);
}

#[test]
fn datatype_disagreement_is_type_mismatch() {
    // Sender posts MPI_INT, receiver asks for MPI_DOUBLE.
    let verdict = classify(
        "int main(int argc, char **argv) {\n\
         int rank;\n\
         int ival = 7;\n\
         double dval = 0.0;\n\
         MPI_Init(&argc, &argv);\n\
         MPI_Comm_rank(MPI_COMM_WORLD, &rank);\n\
         if (rank == 0) {\n\
         MPI_Send(&ival, 1, MPI_INT, 1, 0, MPI_COMM_WORLD);\n\
         }\n\
         if (rank == 1) {\n\
         MPI_Recv(&dval, 1, MPI_DOUBLE, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);\n\
         }\n\
         MPI_Finalize();\n\
         return 0;\n\
         }",
    );
    assert_eq!(verdict, Verdict::TypeMismatch);
}

#[test]
fn wrong_root_collective_is_rank_crash() {
    // Bcast root 9 does not exist in a 2-rank world.
    let verdict = classify(
        "int main(int argc, char **argv) {\n\
         int rank;\n\
         double v = 1.0;\n\
         MPI_Init(&argc, &argv);\n\
         MPI_Comm_rank(MPI_COMM_WORLD, &rank);\n\
         MPI_Bcast(&v, 1, MPI_DOUBLE, 9, MPI_COMM_WORLD);\n\
         MPI_Finalize();\n\
         return 0;\n\
         }",
    );
    assert_eq!(verdict, Verdict::RankCrash);
}

#[test]
fn missing_reduction_diverges_from_serial() {
    // Each rank sums its stride of the domain but nobody reduces: root
    // prints its partial. Serially that partial IS the full sum, so the
    // 2-rank output is off by ~2x — exactly what the serial-baseline
    // comparison exists to catch.
    let verdict = classify(
        "int main(int argc, char **argv) {\n\
         int rank, size, i;\n\
         double local = 0.0;\n\
         MPI_Init(&argc, &argv);\n\
         MPI_Comm_rank(MPI_COMM_WORLD, &rank);\n\
         MPI_Comm_size(MPI_COMM_WORLD, &size);\n\
         for (i = rank; i < 64; i += size) {\n\
         local += i + 1.0;\n\
         }\n\
         if (rank == 0) {\n\
         printf(\"sum = %.2f\\n\", local);\n\
         }\n\
         MPI_Finalize();\n\
         return 0;\n\
         }",
    );
    assert_eq!(verdict, Verdict::DivergedFromSerial);
}

#[test]
fn runaway_loop_is_timeout() {
    let verdict = classify(
        "int main(int argc, char **argv) {\n\
         int rank;\n\
         int x = 0;\n\
         MPI_Init(&argc, &argv);\n\
         MPI_Comm_rank(MPI_COMM_WORLD, &rank);\n\
         while (1) {\n\
         x = x + 1;\n\
         }\n\
         MPI_Finalize();\n\
         return 0;\n\
         }",
    );
    assert_eq!(verdict, Verdict::Timeout);
}

#[test]
fn syntactically_broken_patch_is_not_executable() {
    let broken = parse_tolerant("int main() { int x = ; return 0; }").program;
    let (verdict, runs) = verify_program(&broken, &fault_opts());
    assert_eq!(verdict, Verdict::NotExecutable);
    assert_eq!(runs, 0, "nothing may execute");
}

/// Options for the benchmark11 reference splices: the paper's 2/4-rank
/// worlds plus the serial baseline, generous budgets (these programs do
/// real numerical work), and a per-program numeric tolerance — programs
/// flagged `deterministic_across_ranks: false` legitimately print
/// rank-count-dependent values (per-rank RNG streams, gathered partials),
/// so their numeric slack is wide while token structure stays exact.
fn bench_opts(deterministic: bool) -> VerifyOptions {
    VerifyOptions {
        rank_counts: vec![2, 4],
        timeout_ms: 20_000,
        step_limit: 50_000_000,
        rel_tol: if deterministic { 0.15 } else { 10.0 },
        ..VerifyOptions::default()
    }
}

#[test]
fn benchmark11_reference_splices_all_verify() {
    for p in benchmark_programs() {
        // The reference "prediction" is the program's own canonical text;
        // the base is the same program with its MPI calls stripped, exactly
        // like the corpus pipeline builds training pairs. A correct splice
        // must reconstruct the original behaviour.
        let (canon_text, canon_prog) = standardize(&parse_strict(p.source).unwrap());
        let stripped = remove_mpi_calls(&canon_prog).stripped;
        let (_, base) = standardize(&stripped);
        let (verdict, runs) = verify_prediction(
            &base,
            &canon_text,
            &bench_opts(p.deterministic_across_ranks),
        );
        assert_eq!(verdict, Verdict::Verified, "{}", p.name);
        assert_eq!(
            runs, 3,
            "{}: 2-rank + 4-rank worlds + serial baseline",
            p.name
        );
    }
}

// ---------------------------------------------------------------------------
// 2. Re-ranking: total demotion across classes, stability within a class.
// ---------------------------------------------------------------------------

#[test]
fn rerank_demotes_failures_below_unverified_and_keeps_verified_order() {
    // Input arrives in model-score order; "v1" beat "v2" on score.
    let out: Vec<&str> = rerank(vec![
        ("deadlocked-top-scorer", Some(Verdict::Deadlock)),
        ("v1", Some(Verdict::Verified)),
        ("past-budget", None),
        ("v2", Some(Verdict::Verified)),
        ("crashed", Some(Verdict::RankCrash)),
    ])
    .into_iter()
    .map(|(tag, _)| tag)
    .collect();
    assert_eq!(
        out,
        [
            "v1",
            "v2",
            "past-budget",
            "deadlocked-top-scorer",
            "crashed"
        ]
    );
}

const ALL_VERDICTS: [Option<Verdict>; 8] = [
    Some(Verdict::Verified),
    None,
    Some(Verdict::Deadlock),
    Some(Verdict::RankCrash),
    Some(Verdict::TypeMismatch),
    Some(Verdict::DivergedFromSerial),
    Some(Verdict::Timeout),
    Some(Verdict::NotExecutable),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Re-ranking is a stable partition: verdict classes ascend, and inside
    /// every class the original (model-score) order is untouched — in
    /// particular two `Verified` candidates are never swapped.
    #[test]
    fn rerank_is_a_stable_class_partition(
        picks in proptest::collection::vec(0usize..ALL_VERDICTS.len(), 0..24),
    ) {
        let input: Vec<(usize, Option<Verdict>)> = picks
            .iter()
            .enumerate()
            .map(|(score_rank, &v)| (score_rank, ALL_VERDICTS[v]))
            .collect();
        let out = rerank(input.clone());

        // Same multiset of candidates (input indices are unique).
        let mut sorted_in = input.clone();
        let mut sorted_out = out.clone();
        sorted_in.sort_by_key(|&(i, _)| i);
        sorted_out.sort_by_key(|&(i, _)| i);
        prop_assert_eq!(sorted_in, sorted_out);

        // Classes never descend.
        prop_assert!(out
            .windows(2)
            .all(|w| Verdict::rank_class(w[0].1) <= Verdict::rank_class(w[1].1)));

        // Within each class, model-score order (the input index) survives.
        for class in 0u8..3 {
            let order: Vec<usize> = out
                .iter()
                .filter(|&&(_, v)| Verdict::rank_class(v) == class)
                .map(|&(i, _)| i)
                .collect();
            prop_assert!(
                order.windows(2).all(|w| w[0] < w[1]),
                "class {} reordered: {:?}",
                class,
                order
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Through the model: read-only property + verdicts on real suggestions.
// ---------------------------------------------------------------------------

/// One tiny trained assistant (beam 2, so there is a beam to re-rank)
/// shared by the whole file — training dominates test wall-clock.
fn tiny_assistant() -> &'static MpiRical {
    static ARTIFACT: OnceLock<MpiRical> = OnceLock::new();
    ARTIFACT.get_or_init(|| {
        let ccfg = CorpusConfig {
            programs: 40,
            seed: 29,
            max_tokens: 320,
            threads: 1,
        };
        let (_, ds, _) = generate_dataset(&ccfg);
        let splits = ds.split(11);
        let mut cfg = MpiRicalConfig {
            model: ModelConfig::tiny(),
            vocab_min_freq: 1,
            ..Default::default()
        };
        cfg.model.max_enc_len = 256;
        cfg.model.max_dec_len = 230;
        cfg.train.epochs = 1;
        cfg.train.batch_size = 8;
        cfg.train.threads = 1;
        cfg.train.validate = false;
        cfg.decode.beam = 2;
        MpiRical::train(&splits.train, &splits.val, &cfg, |_| {}).0
    })
}

/// The same artifact with the verification loop switched on.
fn verifying_assistant(opts: VerifyOptions) -> MpiRical {
    let mut a = tiny_assistant().clone();
    a.verify = Some(opts);
    a
}

/// Fast execution budget for model-produced candidates (a 1-epoch tiny
/// model predicts plenty of junk; junk must fail fast, not stall).
fn model_opts() -> VerifyOptions {
    VerifyOptions {
        rank_counts: vec![2],
        timeout_ms: 300,
        step_limit: 100_000,
        ..VerifyOptions::default()
    }
}

const BUFFERS: [&str; 4] = [
    "int main() { int rank; printf(\"a\\n\"); return 0; }",
    "int main(int argc, char **argv) { double local = 0.0; return 0; }",
    "int main() { int size; int i; for (i = 0; i < 4; i++) {} return 0; }",
    "int main() { return 0; }",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Verification is read-only. With the loop enabled but the execution
    /// budget at zero every hypothesis stays unverified, so the stable
    /// re-rank is the identity — the suggestions (ids, functions, lines,
    /// parse health) must be bitwise what the plain artifact produces,
    /// and nothing may have touched the simulator.
    #[test]
    fn verification_is_read_only(idx in 0usize..BUFFERS.len()) {
        let plain = tiny_assistant();
        let read_only = verifying_assistant(VerifyOptions {
            max_hypotheses: 0,
            ..model_opts()
        });
        let src = BUFFERS[idx];

        prop_assert_eq!(plain.predict_ids(src), read_only.predict_ids(src));

        let off = plain.suggest_report(src);
        let on = read_only.suggest_report(src);
        prop_assert_eq!(&off.suggestions, &on.suggestions);
        prop_assert_eq!(off.health, on.health);
        prop_assert!(on.suggestions.iter().all(|s| s.verdict.is_none()));

        let stats = on.verify.expect("loop enabled: stats present");
        prop_assert_eq!(stats.hypotheses, 0, "budget zero: nothing executed");
        prop_assert_eq!(stats.sim_runs, 0, "budget zero: simulator untouched");
        prop_assert_eq!(stats.unverified, plain.decode.beam);
    }
}

#[test]
fn verified_report_carries_verdicts_and_stats() {
    let verifying = verifying_assistant(model_opts());
    for src in BUFFERS {
        let report = verifying.suggest_report(src);
        let stats = report.verify.expect("verification enabled");
        assert_eq!(
            stats.hypotheses + stats.unverified,
            tiny_assistant().decode.beam,
            "every hypothesis is accounted for"
        );
        assert_eq!(
            stats.verified
                + stats.deadlock
                + stats.rank_crash
                + stats.type_mismatch
                + stats.diverged
                + stats.timeout
                + stats.not_executable,
            stats.hypotheses,
            "verdict counts partition the executed hypotheses"
        );
        // All suggestions of one report come from the winning hypothesis.
        let verdicts: Vec<_> = report.suggestions.iter().map(|s| s.verdict).collect();
        assert!(verdicts.windows(2).all(|w| w[0] == w[1]), "{verdicts:?}");
        // The model's own prediction is untouched by the loop.
        assert_eq!(
            tiny_assistant().predict_ids(src),
            verifying.predict_ids(src)
        );
    }
}

#[test]
fn batch_and_service_agree_with_sequential_verification() {
    let verifying = verifying_assistant(model_opts());
    let sequential: Vec<_> = BUFFERS
        .iter()
        .map(|b| verifying.suggest_report(b))
        .collect();

    // One-shot batch path: same verdict-ranked suggestions, input order.
    let batch = verifying.suggest_batch(&BUFFERS);
    for (got, want) in batch.iter().zip(&sequential) {
        assert_eq!(got, &want.suggestions);
    }

    // Service path: Done tickets carry the same suggestions plus stats.
    let mut service = SuggestService::new(&verifying);
    let tickets: Vec<_> = BUFFERS
        .iter()
        .map(|b| service.submit_with(b, SubmitOptions::bulk()))
        .collect();
    service.run();
    for (ticket, want) in tickets.into_iter().zip(&sequential) {
        match service.poll(ticket) {
            SuggestPoll::Done {
                suggestions,
                verify,
                health,
                ..
            } => {
                assert_eq!(suggestions, want.suggestions);
                assert_eq!(verify, want.verify);
                assert_eq!(health, want.health);
            }
            other => panic!("ticket not finished: {other:?}"),
        }
    }
}
