//! Integration: corpus records survive the tokenize → vocab → encode →
//! decode roundtrip losslessly, and call-site extraction agrees between the
//! AST view (labels) and the token view (predictions).

use mpirical::{
    build_vocab, calls_from_tokens, detokenize, encode_record, tokenize_code, InputFormat,
};
use mpirical_corpus::{generate_dataset, CorpusConfig};
use mpirical_model::ModelConfig;

fn dataset() -> mpirical_corpus::Dataset {
    let (_, ds, _) = generate_dataset(&CorpusConfig {
        programs: 100,
        seed: 555,
        max_tokens: 320,
        threads: 0,
    });
    assert!(ds.len() > 20);
    ds
}

#[test]
fn label_tokens_roundtrip_through_vocab() {
    let ds = dataset();
    let vocab = build_vocab(&ds, 1, 100_000);
    let mut cfg = ModelConfig::tiny();
    cfg.max_enc_len = 4096;
    cfg.max_dec_len = 4096;
    for r in ds.records.iter().take(30) {
        let ex = encode_record(r, &vocab, &cfg, InputFormat::CodeXsbt).unwrap();
        let decoded = vocab.decode(&ex.tgt[1..]);
        assert_eq!(
            decoded,
            tokenize_code(&r.label_code),
            "record {} lost tokens through the vocab",
            r.id
        );
    }
}

#[test]
fn ast_and_token_call_extraction_agree() {
    let ds = dataset();
    for r in ds.records.iter().take(40) {
        let token_calls = calls_from_tokens(&tokenize_code(&r.label_code));
        assert_eq!(
            token_calls.len(),
            r.mpi_calls.len(),
            "record {}: {} vs {:?}",
            r.id,
            token_calls.len(),
            r.mpi_calls
        );
        for (t, a) in token_calls.iter().zip(&r.mpi_calls) {
            assert_eq!(t.name, a.name, "record {}", r.id);
            assert_eq!(t.line, a.line, "record {} call {}", r.id, a.name);
        }
    }
}

#[test]
fn detokenized_labels_reparse_and_reextract() {
    let ds = dataset();
    for r in ds.records.iter().take(20) {
        let toks = tokenize_code(&r.label_code);
        let text = detokenize(&toks);
        let prog = mpirical_cparse::parse_strict(&text)
            .unwrap_or_else(|e| panic!("record {} detokenized does not parse: {e}", r.id));
        let calls = mpirical_corpus::extract_mpi_calls(&prog);
        assert_eq!(calls.len(), r.mpi_calls.len(), "record {}", r.id);
        // Names survive; lines may shift only if token spacing changed line
        // structure, which <nl> markers prevent.
        for (c, a) in calls.iter().zip(&r.mpi_calls) {
            assert_eq!(c.name, a.name);
            assert_eq!(c.line, a.line, "record {} call {}", r.id, c.name);
        }
    }
}

#[test]
fn dataset_jsonl_roundtrip_at_scale() {
    let ds = dataset();
    let text = ds.to_jsonl();
    let back = mpirical_corpus::Dataset::from_jsonl(&text).unwrap();
    assert_eq!(ds.records, back.records);
}

#[test]
fn split_is_stable_and_disjoint() {
    let ds = dataset();
    let s1 = ds.split(42);
    let s2 = ds.split(42);
    let ids =
        |d: &mpirical_corpus::Dataset| -> Vec<u64> { d.records.iter().map(|r| r.id).collect() };
    assert_eq!(ids(&s1.train), ids(&s2.train));
    assert_eq!(ids(&s1.test), ids(&s2.test));
    let train_set: std::collections::HashSet<u64> = ids(&s1.train).into_iter().collect();
    for id in ids(&s1.test) {
        assert!(!train_set.contains(&id), "test leaks into train");
    }
}
