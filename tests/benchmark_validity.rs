//! Integration: the Table-III benchmark programs against the full §VI-C
//! validation substrate (parser + interpreter + simulated MPI), plus the
//! removal pipeline that turns them into evaluation inputs.

use mpirical::{benchmark_programs, validate_program};
use mpirical_corpus::{extract_mpi_calls, remove_mpi_calls};
use mpirical_cparse::{parse_strict, print_program};
use mpirical_interp::{run_program, RunConfig};

#[test]
fn all_eleven_programs_are_valid_mpi_programs() {
    let programs = benchmark_programs();
    assert_eq!(programs.len(), 11, "Table III has 11 rows");
    for p in &programs {
        let v = validate_program(p);
        assert!(v.ok(), "{}: {v:?}", p.name);
    }
}

#[test]
fn removal_then_reinsertion_oracle_is_identity() {
    // Strip MPI from each benchmark program; re-inserting the ground truth
    // (the oracle assistant) must reproduce exactly the standardized
    // original — the upper bound of Table III is F1 = 1.0 by construction.
    for p in benchmark_programs() {
        let prog = parse_strict(p.source).unwrap();
        let std_text = print_program(&prog);
        let std_prog = parse_strict(&std_text).unwrap();
        let truth = extract_mpi_calls(&std_prog);
        let removal = remove_mpi_calls(&std_prog);
        assert_eq!(
            removal.removed.len(),
            truth.len(),
            "{}: removal records every call",
            p.name
        );
        let input_text = print_program(&removal.stripped);
        let leftover = extract_mpi_calls(&parse_strict(&input_text).unwrap());
        assert!(leftover.is_empty(), "{}: input side clean", p.name);
    }
}

#[test]
fn stripped_benchmark_programs_are_incomplete_but_wellformed() {
    // The paper's premise: the stripped program is an *incomplete* program
    // the programmer is still editing — it parses, but without
    // MPI_Comm_rank/MPI_Comm_size its rank/size variables stay zero, so
    // strided loops (`i += size`) legitimately spin. The substrate must
    // handle both outcomes deterministically: clean termination or the
    // step-limit guard — never a crash or type fault.
    use mpirical_interp::{InterpError, Limits};
    for p in benchmark_programs() {
        let prog = parse_strict(p.source).unwrap();
        let std_prog = parse_strict(&print_program(&prog)).unwrap();
        let removal = remove_mpi_calls(&std_prog);
        let input_text = print_program(&removal.stripped);
        let input_prog = parse_strict(&input_text).unwrap();
        let mut cfg = RunConfig::new(1);
        cfg.limits = Limits {
            step_limit: 200_000,
            ..Limits::default()
        };
        match run_program(&input_prog, &cfg) {
            Ok(out) => assert_eq!(out.exit_codes, vec![0], "{}", p.name),
            Err(InterpError::StepLimit { .. }) | Err(InterpError::DivideByZero { .. }) => {
                // size == 0 → zero-stride loops or `n / size`: the expected
                // incompleteness of an MPI program missing its MPI calls.
            }
            Err(other) => panic!("{} stripped faulted: {other}\n{input_text}", p.name),
        }
    }
}

#[test]
fn parallel_answers_match_serial_answers() {
    // For the deterministic programs, the 4-rank root output equals the
    // 1-rank root output — the numerical core of the validation.
    for p in benchmark_programs() {
        if !p.deterministic_across_ranks {
            continue;
        }
        let prog = parse_strict(p.source).unwrap();
        let serial = run_program(&prog, &RunConfig::new(1)).unwrap();
        let parallel = run_program(&prog, &RunConfig::new(4)).unwrap();
        assert_eq!(
            serial.rank_outputs[0], parallel.rank_outputs[0],
            "{}: decomposition changed the answer",
            p.name
        );
    }
}

#[test]
fn benchmark_inputs_fit_the_paper_pipeline() {
    // Every benchmark program passes the same inclusion/exclusion gates as
    // the corpus (the paper notes all 11 pass, §VI-C).
    let cfg = mpirical_corpus::CorpusConfig::default();
    for p in benchmark_programs() {
        let raw = mpirical_corpus::RawProgram {
            index: 0,
            schema: mpirical_corpus::Schema::HelloRank, // provenance placeholder
            source: p.source.to_string(),
        };
        let record = mpirical_corpus::process_program(&raw, &cfg)
            .unwrap_or_else(|e| panic!("{} rejected by pipeline: {e:?}", p.name));
        assert!(!record.mpi_calls.is_empty());
        assert!(record.input_xsbt.contains("<function_definition>"));
    }
}
