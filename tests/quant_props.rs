//! Property-test suite for the int8 per-channel quantization kernels
//! (shims/proptest) — the quantize→dequantize round-trip contract and the
//! bitwise kernel semantics the quantized decode path rests on:
//!
//! 1. **Round-trip bound** — for random weight matrices across value
//!    scales and shapes, every element's dequantization error is
//!    ≤ `scale_j / 2` of its output channel, and zeros are preserved
//!    *exactly* (an all-zero column gets scale 1, not NaN).
//! 2. **Bitwise i32 reference** — `vecmat_q` equals a scalar
//!    quantize-then-`i32`-accumulate reference bit for bit, and every row
//!    of `batch_matmul_q` equals `vecmat_q` of that row bit for bit
//!    (integer accumulation is order-invariant, so the blocking in the
//!    kernels cannot — and must not — change a single bit).
//! 3. **Per-channel error bound** — `|vecmat_q − vecmat|` stays within
//!    [`QuantMat::channel_error_bound`], the worst-case bound derived from
//!    the weight and activation scales.
//!
//! Case counts elevate via `PROPTEST_CASES` (CI runs the suite a second
//! time with a larger count).

use mpirical_tensor::{batch_matmul_q, quantize_row, vecmat, vecmat_q, QuantMat, Tensor};
use proptest::prelude::*;

/// Random `[k, n]` matrix with values spanning `±mag`, with a sprinkling
/// of exact zeros (index-hashed, so shapes and zero positions co-vary).
fn arb_matrix() -> impl Strategy<Value = Tensor> {
    ((1usize..40, 1usize..40), 0.01f32..100.0).prop_flat_map(|((k, n), mag)| {
        proptest::collection::vec(-1.0f32..1.0, k * n).prop_map(move |vals| {
            let data: Vec<f32> = vals
                .iter()
                .enumerate()
                .map(|(i, &v)| if i % 11 == 3 { 0.0 } else { v * mag })
                .collect();
            Tensor::from_vec(&[k, n], data)
        })
    })
}

/// Scalar reference of the quantized product: quantize the activation with
/// the shared [`quantize_row`], accumulate `q_v · q_m` in `i32` per output
/// channel, dequantize once — the exact semantics `vecmat_q` promises.
fn scalar_reference(v: &[f32], m: &QuantMat) -> Vec<f32> {
    let (k, n) = m.shape();
    let mut q = vec![0i8; k];
    let vs = quantize_row(v, &mut q);
    (0..n)
        .map(|j| {
            let mut acc = 0i32;
            for (kk, &qv) in q.iter().enumerate() {
                acc += qv as i32 * m.q_at(kk, j) as i32;
            }
            acc as f32 * vs * m.scales()[j]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property 1: per-channel round-trip error ≤ scale/2, zeros exact.
    #[test]
    fn roundtrip_error_bounded_and_zeros_exact(m in arb_matrix()) {
        let (k, n) = (m.shape[0], m.shape[1]);
        let qm = QuantMat::quantize(&m);
        prop_assert_eq!(qm.shape(), (k, n));
        let deq = qm.dequantize();
        for kk in 0..k {
            for j in 0..n {
                let orig = m.data[kk * n + j];
                let back = deq.data[kk * n + j];
                if orig == 0.0 {
                    prop_assert_eq!(back, 0.0, "zero at ({}, {}) must survive", kk, j);
                }
                let err = (orig - back).abs();
                let half = qm.scales()[j] / 2.0;
                prop_assert!(
                    err <= half * (1.0 + 1e-6),
                    "({}, {}): err {} exceeds scale/2 = {}", kk, j, err, half
                );
            }
        }
        // Scales are strictly positive (all-zero columns fall back to 1).
        prop_assert!(qm.scales().iter().all(|&s| s > 0.0));
    }

    /// Property 2a: `vecmat_q` ≡ the scalar i32 reference, bitwise.
    #[test]
    fn vecmat_q_is_bitwise_i32_reference(
        m in arb_matrix(),
        seed in 0u32..1000,
    ) {
        let (k, n) = (m.shape[0], m.shape[1]);
        let qm = QuantMat::quantize(&m);
        let v: Vec<f32> = (0..k)
            .map(|i| ((i as f32 + seed as f32) * 0.73).sin() * (1.0 + seed as f32 * 0.01))
            .collect();
        let mut out = vec![0.0f32; n];
        vecmat_q(&v, &qm, &mut out);
        prop_assert_eq!(out, scalar_reference(&v, &qm));
    }

    /// Property 2b: every `batch_matmul_q` row ≡ `vecmat_q` of that row,
    /// bitwise, for any row count (the quantized batched decode promise).
    #[test]
    fn batch_rows_are_bitwise_vecmat_q(
        m in arb_matrix(),
        rows in 1usize..10,
        seed in 0u32..1000,
    ) {
        let (k, n) = (m.shape[0], m.shape[1]);
        let qm = QuantMat::quantize(&m);
        let x: Vec<f32> = (0..rows * k)
            .map(|i| ((i as f32 * 0.31 + seed as f32) * 0.57).cos() * 3.0)
            .collect();
        let mut q = vec![0i8; rows * k];
        let mut scales = vec![0.0f32; rows];
        let mut batched = vec![0.0f32; rows * n];
        batch_matmul_q(&x, rows, &qm, &mut q, &mut scales, &mut batched);
        let mut single = vec![0.0f32; n];
        for r in 0..rows {
            vecmat_q(&x[r * k..(r + 1) * k], &qm, &mut single);
            prop_assert_eq!(&batched[r * n..(r + 1) * n], &single[..], "row {}", r);
        }
    }

    /// Property 3: the quantized product tracks the exact f32 product
    /// within the per-channel worst-case bound derived from the scales.
    #[test]
    fn quant_error_within_per_channel_scale_bound(
        m in arb_matrix(),
        seed in 0u32..1000,
    ) {
        let (k, n) = (m.shape[0], m.shape[1]);
        let qm = QuantMat::quantize(&m);
        let v: Vec<f32> = (0..k)
            .map(|i| ((i as f32 + seed as f32 * 3.0) * 0.41).sin() * 2.0)
            .collect();
        let mut exact = vec![0.0f32; n];
        vecmat(&v, &m, &mut exact);
        let mut quant = vec![0.0f32; n];
        vecmat_q(&v, &qm, &mut quant);
        let bound = qm.channel_error_bound(&v);
        for j in 0..n {
            let err = (exact[j] - quant[j]).abs();
            prop_assert!(
                err <= bound[j] * (1.0 + 1e-4) + 1e-6,
                "channel {}: err {} exceeds scale-derived bound {}", j, err, bound[j]
            );
        }
    }
}
