//! Frame fuzzing for the daemon's wire layer: random byte soup, oversize
//! length prefixes, truncated frames, and garbage JSON payloads must
//! never crash the daemon or corrupt a concurrent well-formed session —
//! they terminate exactly the connection that sent them.
//!
//! One daemon is shared by every case and every test in this binary (the
//! point is survival under a stream of faults), so the malformed/shed
//! counters are only ever asserted to *grow*, never to hit exact values.
//! The property test honors `PROPTEST_CASES` (CI raises it to 512).

use mpirical::corpus::{generate_dataset, CorpusConfig};
use mpirical::model::ModelConfig;
use mpirical::{MpiRical, MpiRicalConfig, SuggestPoll};
use mpirical_server::{write_frame, Client, Server, ServerConfig, Submitted, MAX_FRAME_LEN};
use proptest::prelude::*;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn tiny_assistant() -> MpiRical {
    let ccfg = CorpusConfig {
        programs: 40,
        seed: 33,
        max_tokens: 320,
        threads: 1,
    };
    let (_, ds, _) = generate_dataset(&ccfg);
    let splits = ds.split(7);
    let mut cfg = MpiRicalConfig {
        model: ModelConfig::tiny(),
        vocab_min_freq: 1,
        ..Default::default()
    };
    cfg.model.max_enc_len = 256;
    cfg.model.max_dec_len = 230;
    cfg.train.epochs = 1;
    cfg.train.batch_size = 8;
    cfg.train.threads = 1;
    cfg.train.validate = false;
    MpiRical::train(&splits.train, &splits.val, &cfg, |_| {}).0
}

/// The shared daemon under bombardment. Leaked deliberately (`forget`):
/// it must outlive every test in the binary, and the OS reaps the port.
fn daemon_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let server = Server::start(
            Arc::new(tiny_assistant()),
            ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                pending_budget: 4096,
                retry_after_steps: 8,
            },
        )
        .expect("bind loopback");
        let addr = server.addr();
        std::mem::forget(server);
        addr
    })
}

/// One adversarial connection's worth of bytes.
#[derive(Debug, Clone)]
enum Injection {
    /// Raw byte soup, no framing discipline at all.
    RawBytes(Vec<u8>),
    /// A length prefix promising more than [`MAX_FRAME_LEN`].
    OversizePrefix(u32),
    /// A prefix promising `declared` bytes, followed by fewer, then EOF.
    Truncated { declared: u32, sent: Vec<u8> },
    /// A perfectly framed payload that is not valid JSON.
    FramedGarbage(Vec<u8>),
}

fn injections() -> impl Strategy<Value = Injection> {
    prop_oneof![
        proptest::collection::vec(0u8..=255, 0..64usize).prop_map(Injection::RawBytes),
        ((MAX_FRAME_LEN as u32 + 1)..=u32::MAX).prop_map(Injection::OversizePrefix),
        (8u32..2048, 0usize..7).prop_map(|(declared, cut)| Injection::Truncated {
            declared,
            sent: vec![b'x'; declared as usize * cut / 8],
        }),
        proptest::collection::vec(32u8..127, 0..48usize).prop_map(|mut tail| {
            // The prefix guarantees the payload cannot parse as JSON while
            // keeping it valid UTF-8, so the fuzz hits the parse path, not
            // just the UTF-8 check.
            let mut payload = b"not-json-".to_vec();
            payload.append(&mut tail);
            Injection::FramedGarbage(payload)
        }),
    ]
}

/// Deliver one injection on its own connection, then close it. Errors are
/// ignored on purpose — the daemon killing the connection mid-write is a
/// *correct* outcome.
fn inject(addr: SocketAddr, injection: &Injection) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        panic!("daemon stopped accepting connections");
    };
    let _ = stream.set_nodelay(true);
    match injection {
        Injection::RawBytes(bytes) => {
            let _ = stream.write_all(bytes);
        }
        Injection::OversizePrefix(len) => {
            let _ = stream.write_all(&len.to_be_bytes());
        }
        Injection::Truncated { declared, sent } => {
            let _ = stream.write_all(&declared.to_be_bytes());
            let _ = stream.write_all(sent);
        }
        Injection::FramedGarbage(payload) => {
            let _ = write_frame(&mut stream, payload);
        }
    }
    let _ = stream.flush();
    // Dropping the stream closes it: a handler blocked mid-frame observes
    // a truncation and terminates — itself only.
}

/// A full well-formed session must still work after the fault: stats plus
/// a tombstone poll every case, a real submit→decode→Done round-trip on a
/// sampled subset (decoding is the expensive part).
fn assert_daemon_healthy(addr: SocketAddr) {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let mut client = Client::connect(addr).expect("connect after fault");
    let stats = client.stats().expect("stats after fault");
    assert!(stats.workers >= 1, "daemon lost its engine: {stats:?}");
    assert_eq!(
        client.poll(u64::MAX).expect("poll after fault"),
        SuggestPoll::Unknown,
        "tombstone poll must cross the wire cleanly"
    );
    if CASE.fetch_add(1, Ordering::Relaxed).is_multiple_of(8) {
        let outcome = client
            .submit("int main() { int rank; return 0; }")
            .expect("submit after fault");
        let Submitted::Ticket(id) = outcome else {
            panic!("healthy submit was not admitted: {outcome:?}");
        };
        match client.wait(id).expect("wait after fault") {
            SuggestPoll::Done { .. } => {}
            other => panic!("healthy request did not finish: {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn injected_faults_never_crash_or_corrupt_the_daemon(injection in injections()) {
        let addr = daemon_addr();
        inject(addr, &injection);
        assert_daemon_healthy(addr);
    }
}

/// Block until the daemon's malformed counter exceeds `floor` — handler
/// threads record faults asynchronously to the injection.
fn await_malformed_above(addr: SocketAddr, floor: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut client = Client::connect(addr).expect("connect");
    loop {
        let seen = client.stats().expect("stats").counters.malformed;
        if seen > floor {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "malformed frame was never counted (floor {floor}, seen {seen})"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn malformed_now(addr: SocketAddr) -> u64 {
    let mut client = Client::connect(addr).expect("connect");
    client.stats().expect("stats").counters.malformed
}

/// An oversize prefix is refused before any allocation: the connection
/// dies without a response, the fault is counted, the daemon lives.
#[test]
fn oversize_prefix_kills_connection_and_is_counted() {
    let addr = daemon_addr();
    let before = malformed_now(addr);
    let mut evil = Client::connect(addr).expect("connect");
    evil.send_raw(&u32::MAX.to_be_bytes()).expect("send prefix");
    assert!(
        evil.recv_response().is_err(),
        "oversize prefix must not get a response"
    );
    await_malformed_above(addr, before);
    assert_daemon_healthy(addr);
}

/// An empty frame (zero-length payload) is well-framed but unparseable:
/// counted as malformed, fatal only to its own connection.
#[test]
fn empty_frame_is_malformed_not_fatal() {
    let addr = daemon_addr();
    let before = malformed_now(addr);
    let mut evil = Client::connect(addr).expect("connect");
    evil.send_raw(&0u32.to_be_bytes())
        .expect("send empty frame");
    assert!(evil.recv_response().is_err());
    await_malformed_above(addr, before);
    assert_daemon_healthy(addr);
}

/// Valid JSON that is not a protocol request is still a malformed frame.
#[test]
fn wrong_shape_json_is_malformed_not_fatal() {
    let addr = daemon_addr();
    let before = malformed_now(addr);
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_frame(&mut stream, br#"{"Nope":{"id":1}}"#).expect("send frame");
    drop(stream);
    await_malformed_above(addr, before);
    assert_daemon_healthy(addr);
}

/// A fault injected *while* a well-formed request is in flight on another
/// connection does not disturb that request.
#[test]
fn fault_during_in_flight_request_does_not_disturb_it() {
    let addr = daemon_addr();
    let mut good = Client::connect(addr).expect("connect");
    let outcome = good
        .submit("int main() { double local = 0.0; return 0; }")
        .expect("submit");
    let Submitted::Ticket(id) = outcome else {
        panic!("submit was not admitted: {outcome:?}");
    };
    inject(
        addr,
        &Injection::Truncated {
            declared: 512,
            sent: vec![b'z'; 100],
        },
    );
    inject(addr, &Injection::OversizePrefix(u32::MAX));
    match good.wait(id).expect("wait") {
        SuggestPoll::Done { .. } => {}
        other => panic!("in-flight request disturbed by fault: {other:?}"),
    }
    assert_daemon_healthy(addr);
}
