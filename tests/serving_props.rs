//! Property-test harness for the v2 serving scheduler (shims/proptest):
//! random priority mixes with preemption and cancellation interleavings
//! through `BatchDecoder`.
//!
//! Two properties:
//!
//! 1. **Schedule equivalence + teardown hygiene** — random request mixes
//!    (prompt lengths, length caps, `min_len`, beam widths 1–4, priority
//!    classes, per-request token caps, late joins, cancellations aimed at
//!    queued / decoding / finished / never-submitted tickets) run through a
//!    priority scheduler with a small aging bound. Every surviving
//!    request's output must be **bitwise identical** both to the
//!    per-request `decode_encoded_prompted_contiguous` reference and to
//!    the same schedule replayed through a FIFO scheduler (all requests
//!    submitted interactive, no cancellations — the v1 admission policy):
//!    priorities, preemption, aging, and cancellation are scheduling
//!    decisions, never numerical ones. Cancelled requests poll
//!    `Cancelled` exactly once, the scheduler drains within a finite step
//!    budget (no preemption livelock / starvation under the aging bound),
//!    and every schedule — including cancel-mid-flight — ends with **zero
//!    live pages**. Each schedule runs in both precisions (f32 and an
//!    `Int8` scheduler).
//! 2. **Preemption latency** — under a randomized bulk saturation of all
//!    8 lanes, every interactive arrival begins decoding on the very next
//!    step (queue wait 0, the acceptance bound), outputs stay pinned to
//!    the reference, and the pool drains.
//!
//! Case counts elevate via `PROPTEST_CASES` (CI runs the suite a second
//! time with a larger count, alongside the paged/quant suites).

use mpirical_model::decode::{decode_encoded_prompted_contiguous, encode_source};
use mpirical_model::transformer::{build_params, TransformerParams};
use mpirical_model::vocab::{EOS, SOS};
use mpirical_model::{
    BatchDecoder, BatchRequest, DecodeOptions, ModelConfig, PollResult, Precision, RequestId,
    SubmitOptions,
};
use mpirical_tensor::{ParamStore, Tensor};
use proptest::prelude::*;
use std::sync::OnceLock;

type Fixture = (ModelConfig, ParamStore, TransformerParams, Vec<Tensor>);

/// One random multi-layer model + a few encoder outputs, built once for
/// the whole suite (scheduling-equivalence properties hold for any
/// weights).
fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut cfg = ModelConfig::tiny();
        cfg.vocab_size = 24;
        cfg.n_dec_layers = 2;
        let mut store = ParamStore::new();
        let params = build_params(&cfg, &mut store, 31);
        let encs: Vec<Tensor> = (0..3)
            .map(|i| encode_source(&store, &params, &cfg, &[SOS, 6 + i, 8 + 2 * i, 9, EOS]))
            .collect();
        (cfg, store, params, encs)
    })
}

/// One randomized request: decode shape, scheduling class, token cap,
/// join step, and an optional cancellation step.
struct Spec {
    prompt: Vec<usize>,
    max_len: usize,
    opts: DecodeOptions,
    bulk: bool,
    max_new: Option<usize>,
    join: usize,
    cancel_at: Option<usize>,
    src: usize,
}

impl Spec {
    /// The length cap the scheduler derives from `max_len` + the token
    /// cap, for the single-request reference call.
    fn effective_max_len(&self) -> usize {
        match self.max_new {
            Some(cap) => self.max_len.min(self.prompt.len() + cap),
            None => self.max_len,
        }
    }

    fn request(&self, enc: &Tensor, precision: Precision, priority_run: bool) -> BatchRequest {
        let mut submit = if priority_run && self.bulk {
            SubmitOptions::bulk()
        } else {
            // The FIFO twin submits everything interactive: one class,
            // FIFO tie-break — exactly the v1 admission policy.
            SubmitOptions::interactive()
        };
        submit.max_new_tokens = self.max_new;
        BatchRequest {
            enc_out: enc.clone(),
            prompt: self.prompt.clone(),
            max_len: self.max_len,
            opts: DecodeOptions {
                precision,
                ..self.opts
            },
            submit,
        }
    }
}

/// Drive one scheduler over the specs' join/cancel schedule, then drain it
/// within `budget` steps (a livelock/starvation guard). Returns each
/// request's final poll state (cancel-once semantics asserted inline).
fn drive(
    dec: &mut BatchDecoder,
    specs: &[Spec],
    encs: &[Tensor],
    precision: Precision,
    priority_run: bool,
    budget: usize,
) -> Vec<PollResult> {
    let mut tickets: Vec<Option<RequestId>> = vec![None; specs.len()];
    let mut cancelled: Vec<bool> = vec![false; specs.len()];
    let last_event = specs
        .iter()
        .flat_map(|s| [s.join, s.cancel_at.unwrap_or(0)])
        .max()
        .unwrap_or(0);
    for t in 0..=last_event {
        for (i, s) in specs.iter().enumerate() {
            if s.join == t {
                tickets[i] = Some(dec.submit(s.request(&encs[s.src], precision, priority_run)));
            }
            if priority_run && s.cancel_at == Some(t) {
                // Aim cancellations wherever the schedule put the request
                // by now: queued, decoding, already finished (refused), or
                // not yet submitted (skipped).
                if let Some(id) = tickets[i] {
                    cancelled[i] = dec.cancel(id);
                }
            }
        }
        dec.step();
    }
    let mut steps = 0usize;
    while dec.step() > 0 {
        steps += 1;
        prop_assert!(
            steps <= budget,
            "scheduler failed to drain within {} steps (livelock/starvation)",
            budget
        );
    }
    tickets
        .iter()
        .zip(&cancelled)
        .map(|(ticket, &was_cancelled)| {
            let id = ticket.expect("all specs submitted");
            let first = dec.poll(id);
            if was_cancelled {
                // A successful cancel polls `Cancelled` exactly once.
                prop_assert_eq!(&first, &PollResult::Cancelled);
                prop_assert_eq!(dec.poll(id), PollResult::Unknown);
            }
            first
        })
        .collect()
}

/// `Option` strategy (the shim has no `proptest::option` module).
fn maybe(range: std::ops::Range<usize>) -> impl Strategy<Value = Option<usize>> {
    prop_oneof![Just(None), range.prop_map(Some)]
}

proptest! {
    // Each case decodes up to 6 requests through 4 schedulers (priority +
    // FIFO twin, in two precisions); few default cases keep the run fast
    // (CI elevates via PROPTEST_CASES).
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property 1: random priority/cancellation schedules are bitwise
    /// FIFO- and reference-equivalent for every surviving request, drain
    /// without livelock, and leak zero pages.
    #[test]
    fn random_priority_schedules_match_fifo_and_reference(
        specs in proptest::collection::vec(
            (
                (proptest::collection::vec(6usize..24, 0..4), 2usize..28),
                ((0usize..4, 1usize..5), (any::<bool>(), maybe(0..12))),
                ((0usize..6, maybe(0..9)), 0usize..3),
            ),
            1..7,
        ),
    ) {
        let (cfg, store, params, encs) = fixture();
        let max_batch = 8usize; // ≥ the widest generated beam
        let specs: Vec<Spec> = specs
            .into_iter()
            .map(|((extra, max_len), ((min_len, beam), (bulk, max_new)), ((join, cancel_at), src))| {
                Spec {
                    prompt: std::iter::once(SOS).chain(extra).collect(),
                    max_len,
                    opts: DecodeOptions { beam, min_len, ..Default::default() },
                    bulk,
                    max_new,
                    join,
                    cancel_at,
                    src,
                }
            })
            .collect();
        // Generous drain budget: every request decodes at most its limit,
        // plus slack for admissions, aging promotions, and re-admissions
        // after preemption.
        let budget: usize =
            specs.iter().map(|s| s.max_len + 4).sum::<usize>() + 64;

        for precision in [Precision::F32, Precision::Int8] {
            let references: Vec<Vec<usize>> = specs
                .iter()
                .map(|s| {
                    decode_encoded_prompted_contiguous(
                        store, params, cfg, &encs[s.src], &s.prompt,
                        s.effective_max_len(),
                        DecodeOptions { precision, ..s.opts },
                    )
                })
                .collect();

            // The priority scheduler under test: small aging bound so the
            // random schedules actually exercise promotion, plus real
            // preemption and cancellation.
            let mut dec =
                BatchDecoder::with_precision(store, params, cfg, max_batch, precision);
            dec.set_aging_steps(6);
            let pool = dec.pool().clone();
            let polls = drive(&mut dec, &specs, encs, precision, true, budget);

            // The FIFO twin: same requests in the same join order, one
            // class, no cancellations — the v1 scheduler's behaviour.
            let mut fifo =
                BatchDecoder::with_precision(store, params, cfg, max_batch, precision);
            let fifo_pool = fifo.pool().clone();
            let fifo_polls = drive(&mut fifo, &specs, encs, precision, false, budget);

            for (i, ((poll, fifo_poll), want)) in
                polls.iter().zip(&fifo_polls).zip(&references).enumerate()
            {
                let PollResult::Done { ids: fifo_ids, .. } = fifo_poll else {
                    panic!("{precision:?} FIFO twin lost request {i}: {fifo_poll:?}");
                };
                prop_assert_eq!(
                    fifo_ids, want,
                    "{:?} FIFO request {} diverged from the reference", precision, i
                );
                match poll {
                    PollResult::Done { ids, telemetry, .. } => {
                        prop_assert_eq!(
                            ids, fifo_ids,
                            "{:?} request {} (bulk={} beam={} cancel_at={:?}): priority \
                             scheduling changed the tokens",
                            precision, i, specs[i].bulk, specs[i].opts.beam,
                            specs[i].cancel_at
                        );
                        prop_assert!(
                            telemetry.queue_wait_steps as usize <= budget,
                            "request {} waited past the drain budget", i
                        );
                    }
                    PollResult::Cancelled => {} // verified inside drive()
                    other => panic!(
                        "{precision:?} request {i} neither finished nor cancelled: {other:?}"
                    ),
                }
            }
            drop(dec);
            drop(fifo);
            prop_assert_eq!(
                pool.stats().pages_live, 0,
                "{:?} priority scheduler leaked pages", precision
            );
            prop_assert_eq!(
                fifo_pool.stats().pages_live, 0,
                "{:?} FIFO scheduler leaked pages", precision
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property 2: the acceptance bound under randomized saturation —
    /// with all 8 lanes held by bulk work of arbitrary lengths, every
    /// interactive arrival preempts and begins decoding on the very next
    /// step, with zero recorded queue wait, and no output or page-hygiene
    /// regression.
    #[test]
    fn interactive_arrivals_start_within_one_step_under_bulk_saturation(
        bulk_min_lens in proptest::collection::vec(4usize..20, 8..9),
        interleave in proptest::collection::vec(0usize..3, 1..5),
    ) {
        let (cfg, store, params, encs) = fixture();
        let lanes = 8usize;
        let mut dec = BatchDecoder::new(store, params, cfg, lanes);
        let pool = dec.pool().clone();

        let bulk_ids: Vec<(RequestId, usize, usize)> = bulk_min_lens
            .iter()
            .enumerate()
            .map(|(i, &min_len)| {
                let opts = DecodeOptions { beam: 1, min_len, ..Default::default() };
                let id = dec.submit(BatchRequest {
                    enc_out: encs[i % encs.len()].clone(),
                    prompt: vec![SOS],
                    max_len: 24,
                    opts,
                    submit: SubmitOptions::bulk(),
                });
                (id, i % encs.len(), min_len)
            })
            .collect();
        dec.step();
        prop_assert_eq!(dec.active(), lanes, "bulk saturates every lane");

        // Interactive arrivals at randomized gaps; each must be decoding
        // (≥ 1 token, or already done) one step after submission.
        let mut interactive_ids: Vec<(RequestId, usize)> = Vec::new();
        for (k, &gap) in interleave.iter().enumerate() {
            for _ in 0..gap {
                dec.step();
            }
            let src = k % encs.len();
            let id = dec.submit(BatchRequest::greedy(encs[src].clone(), 16));
            dec.step();
            match dec.poll(id) {
                PollResult::Decoding { tokens_so_far } => {
                    prop_assert_eq!(tokens_so_far.len(), 1, "one token per step");
                }
                // Single-token generations can finish on their first step.
                PollResult::Done { .. } => {}
                other => panic!(
                    "interactive arrival {k} not decoding one step after submit: {other:?}"
                ),
            }
            interactive_ids.push((id, src));
        }
        dec.run();

        for (id, src) in interactive_ids {
            match dec.poll(id) {
                PollResult::Done { ids, telemetry, .. } => {
                    let want = decode_encoded_prompted_contiguous(
                        store, params, cfg, &encs[src], &[SOS], 16,
                        DecodeOptions::default(),
                    );
                    prop_assert_eq!(ids, want, "interactive output pinned to reference");
                    prop_assert_eq!(
                        telemetry.queue_wait_steps, 0u64,
                        "interactive work never waits in the queue"
                    );
                }
                PollResult::Unknown => {} // redeemed inside the loop above
                other => panic!("interactive request unfinished: {other:?}"),
            }
        }
        for (id, src, min_len) in bulk_ids {
            let opts = DecodeOptions { beam: 1, min_len, ..Default::default() };
            let want = decode_encoded_prompted_contiguous(
                store, params, cfg, &encs[src], &[SOS], 24, opts,
            );
            let got = dec.poll(id).into_output().expect("bulk finished");
            prop_assert_eq!(got, want, "preempt/resume never changes bulk tokens");
        }
        drop(dec);
        prop_assert_eq!(pool.stats().pages_live, 0, "pages leaked");
    }
}
