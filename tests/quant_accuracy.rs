//! Accuracy harness for the int8 per-channel quantized decode path: the
//! contract is **proven against f32 golden logits, not asserted**.
//!
//! Three layers of enforcement, strongest first:
//!
//! 1. **Per-channel worst-case bound, derived from the scales** — where
//!    the bound is mathematically exact (a single projection), it is
//!    enforced exactly: for random weight matrices at the serving shapes
//!    the decoder actually streams (`d×d`, `d×d_ff`, `d×vocab`),
//!    `|vecmat_q − vecmat| ≤ channel_error_bound` per output channel.
//! 2. **Golden logits per step** — randomized serving-shape artifacts
//!    (d = 256 / d_ff = 1024, the `decode_quant` bench's shape family;
//!    vocab 2048 here, the bench caps at the assistant's 4096) are walked
//!    token by token along the f32 greedy trajectory; at every step the
//!    quantized logits must stay within a max-abs envelope of the f32
//!    golden logits, **top-1 agreement across all steps must be ≥ 99%**,
//!    and — the stronger invariant — the quantized path must **never
//!    overturn a decisive f32 decision**: any argmax disagreement must sit
//!    at a golden top-1/top-2 gap inside the noise envelope (measured: all
//!    disagreements on this corpus have gap ≤ 6.4e-3, i.e. they are f32
//!    near-ties where the model itself is indifferent; measured agreement
//!    is 478/480 = 99.58%, so the 99% floor has deterministic slack —
//!    every RNG in the walk is fixed-seeded).
//! 3. **No silent f32 fallback** — quantized logits must *differ* from the
//!    f32 logits bitwise (a path that silently forwards to the f32 kernels
//!    would agree 100% and slip through 1–2 otherwise).
//!
//! The same walks also pin the quantized engine's internal consistency:
//! the `BatchDecoder` lockstep scheduler in `Int8` mode must emit exactly
//! the single-request quantized tokens (greedy and beam), on paged and
//! contiguous storage alike.

use mpirical_model::decode::{
    decode_encoded_prompted_contiguous, decode_encoded_prompted_quant, encode_source,
};
use mpirical_model::transformer::build_params;
use mpirical_model::vocab::{EOS, SOS};
use mpirical_model::{
    decode_step, decode_step_quant, BatchDecoder, BatchRequest, DecodeOptions, DecoderCache,
    ModelConfig, Precision, QuantDecoderWeights, SubmitOptions,
};
use mpirical_tensor::{vecmat, vecmat_q, ParamStore, QuantMat, Tensor};

/// Max-abs logit error envelope per step. Measured: the corpus below
/// lands at ≤ 3.3e-2 max-abs drift after two decoder layers (per-channel
/// weight rounding of ≤ s_j/2 per element, compounded through the
/// residual stream); 0.05 leaves ~50% headroom — stable across code
/// motion, but a kernel regression (wrong scale, dropped channel, broken
/// panel walk) perturbs logits by O(1) and blows straight through it.
const LOGIT_ENVELOPE: f32 = 0.05;

/// A serving-shape artifact with random (seeded) weights — the
/// equivalence and accuracy contracts must hold for any weights, so
/// random ones are the honest test.
#[allow(clippy::type_complexity)]
fn artifact_full(
    d: usize,
    d_ff: usize,
    vocab: usize,
    seed: u64,
) -> (
    ModelConfig,
    ParamStore,
    mpirical_model::TransformerParams,
    Tensor,
) {
    let cfg = ModelConfig {
        vocab_size: vocab,
        d_model: d,
        n_heads: 4,
        d_ff,
        n_enc_layers: 2,
        n_dec_layers: 2,
        max_enc_len: 64,
        max_dec_len: 64,
        dropout: 0.0,
    };
    let mut store = ParamStore::new();
    let params = build_params(&cfg, &mut store, seed);
    let src: Vec<usize> = std::iter::once(SOS)
        .chain((0..24).map(|i| 6 + ((i * (seed as usize + 3)) % (vocab - 6))))
        .chain(std::iter::once(EOS))
        .collect();
    let enc_out = encode_source(&store, &params, &cfg, &src);
    (cfg, store, params, enc_out)
}

/// Argmax over a logits row with `<eos>` banned (the walk must not end
/// early; mirrors the engine's `min_len` ban).
fn argmax_no_eos(row: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate() {
        if i != EOS && v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

/// Layer 1: the scale-derived per-channel bound, enforced exactly at the
/// serving projection shapes on random weights and activations.
#[test]
fn kernel_error_within_scale_derived_channel_bound_at_serving_shapes() {
    for (k, n, seed) in [
        (256usize, 256usize, 1u64),
        (256, 1024, 2),
        (1024, 256, 3),
        (256, 4096, 4),
    ] {
        // Deterministic pseudo-random weights/activations with per-channel
        // magnitude variation (so the per-channel scales genuinely differ).
        let m = Tensor::from_vec(
            &[k, n],
            (0..k * n)
                .map(|i| {
                    let x = ((i as f32 + seed as f32 * 977.0) * 0.61803).sin();
                    let col_mag = 0.05 + ((i % n) as f32 * 0.37).cos().abs();
                    x * col_mag
                })
                .collect(),
        );
        let v: Vec<f32> = (0..k)
            .map(|i| ((i as f32 * 1.93 + seed as f32) * 0.707).cos() * 2.0)
            .collect();
        let qm = QuantMat::quantize(&m);
        let mut exact = vec![0.0f32; n];
        vecmat(&v, &m, &mut exact);
        let mut quant = vec![0.0f32; n];
        vecmat_q(&v, &qm, &mut quant);
        let bound = qm.channel_error_bound(&v);
        for j in 0..n {
            let err = (exact[j] - quant[j]).abs();
            assert!(
                err <= bound[j] * (1.0 + 1e-4) + 1e-6,
                "[{k}x{n}] channel {j}: err {err} exceeds scale-derived bound {}",
                bound[j]
            );
        }
    }
}

/// Golden top-1/top-2 gap of a logits row (`<eos>` excluded, matching the
/// walk's ban) — how decisive the f32 model was at this step.
fn top_gap_no_eos(row: &[f32]) -> f32 {
    let (mut b1, mut b2) = (f32::NEG_INFINITY, f32::NEG_INFINITY);
    for (i, &v) in row.iter().enumerate() {
        if i == EOS {
            continue;
        }
        if v > b1 {
            b2 = b1;
            b1 = v;
        } else if v > b2 {
            b2 = v;
        }
    }
    b1 - b2
}

/// Layers 2 + 3: walk randomized serving-shape artifacts (d = 256,
/// d_ff = 1024, vocab 2048 — the `decode_quant` bench's shape family;
/// the bench itself uses the assistant's 4096-vocab cap) along the f32
/// greedy trajectory; quantized logits must track the golden logits
/// within the envelope, agree on the top-1 token ≥ 99% of the time, never
/// overturn a decisive f32 decision, and visibly differ bitwise (no
/// silent f32 fallback). Fixed seeds make every number deterministic; the
/// corpus measures 478/480 agreement with all disagreements at golden
/// gaps ≤ 6.4e-3 (f32 near-ties).
#[test]
fn quant_logits_track_f32_golden_logits_per_step() {
    let mut steps = 0usize;
    let mut agreements = 0usize;
    let mut max_err = 0.0f32;
    let mut any_bitwise_diff = false;
    for seed in [18u64, 20, 25, 26, 27, 30, 31, 32] {
        let (cfg, store, params, enc_out) = artifact_full(256, 1024, 2048, seed);
        let qw = QuantDecoderWeights::new(&store, &params);
        assert_eq!(qw.out_scales().len(), cfg.vocab_size);
        let mut golden_cache = DecoderCache::new(&store, &params, &cfg, &enc_out);
        let mut quant_cache = DecoderCache::new(&store, &params, &cfg, &enc_out);
        let mut tok = SOS;
        for _ in 0..60 {
            let golden = decode_step(&store, &params, &cfg, &mut golden_cache, tok);
            let quant = decode_step_quant(&store, &params, &cfg, &qw, &mut quant_cache, tok);
            assert_eq!(golden.len(), quant.len());
            any_bitwise_diff |= golden != quant;
            for (i, (g, q)) in golden.iter().zip(&quant).enumerate() {
                let err = (g - q).abs();
                max_err = max_err.max(err);
                assert!(
                    err <= LOGIT_ENVELOPE,
                    "seed={seed} step={steps} logit {i}: f32 {g} vs int8 {q} \
                     (err {err} > envelope {LOGIT_ENVELOPE})"
                );
            }
            let g_top = argmax_no_eos(&golden);
            let q_top = argmax_no_eos(&quant);
            steps += 1;
            if g_top == q_top {
                agreements += 1;
            } else {
                // The stronger invariant: a disagreement is only tolerable
                // where f32 itself was indifferent — inside the proven
                // noise envelope. A decisive overturn is a kernel bug.
                let gap = top_gap_no_eos(&golden);
                assert!(
                    gap <= LOGIT_ENVELOPE,
                    "seed={seed} step={steps}: int8 overturned a decisive f32 argmax \
                     (golden gap {gap} > envelope {LOGIT_ENVELOPE})"
                );
            }
            tok = g_top; // stay on the golden trajectory
        }
    }
    assert!(
        any_bitwise_diff,
        "quantized logits never differed from f32 — the int8 kernels cannot be running"
    );
    let agreement = agreements as f64 / steps as f64;
    eprintln!(
        "quant accuracy: {steps} steps, top-1 agreement {agreement:.4}, max-abs {max_err:.2e}"
    );
    assert!(
        agreement >= 0.99,
        "top-1 agreement {agreement:.4} below the 99% contract ({agreements}/{steps})"
    );
}

/// The quantized engine is internally consistent across every serving
/// surface: lockstep `Int8` scheduling (greedy and beam), prebuilt-weight
/// single requests, and the contiguous reference layout all emit the same
/// tokens on randomized artifacts.
#[test]
fn quant_scheduler_and_layouts_agree_on_random_artifacts() {
    let (cfg, store, params, enc_out) = artifact_full(128, 512, 1024, 21);
    let qw = QuantDecoderWeights::new(&store, &params);
    for beam in [1usize, 3] {
        let opts = DecodeOptions {
            beam,
            min_len: 8,
            precision: Precision::Int8,
        };
        let single =
            decode_encoded_prompted_quant(&store, &params, &cfg, &qw, &enc_out, &[SOS], 24, opts);
        assert!(single.len() >= 8, "min_len forces a real walk");
        let contiguous =
            decode_encoded_prompted_contiguous(&store, &params, &cfg, &enc_out, &[SOS], 24, opts);
        assert_eq!(single, contiguous, "beam={beam} paged vs contiguous");
        let mut dec = BatchDecoder::with_precision(&store, &params, &cfg, 4, Precision::Int8);
        let batched = dec.decode_all(vec![BatchRequest {
            enc_out: enc_out.clone(),
            prompt: vec![SOS],
            max_len: 24,
            opts,
            submit: SubmitOptions::default(),
        }]);
        assert_eq!(single, batched[0], "beam={beam} lockstep vs single");
    }
}
