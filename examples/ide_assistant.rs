//! IDE-assistant demo: the deployment scenario the paper targets (§I, §VII)
//! — MPI-RICAL watching a buffer and proposing MPI calls, tolerant of
//! incomplete code.
//!
//! ```text
//! cargo run --release --example ide_assistant [path/to/model.json] [path/to/file.c]
//! ```
//!
//! Without arguments it trains a small model on the fly and runs the demo on
//! a built-in buffer, including a mid-edit (unparseable) state.

use mpirical::{MpiRical, MpiRicalConfig, SubmitOptions, SuggestPoll, VerifyOptions};
use mpirical_corpus::{generate_dataset, CorpusConfig};
use mpirical_model::ModelConfig;

const DEMO_BUFFER: &str = r#"int main(int argc, char **argv) {
    int rank, size, i;
    int n = 512;
    double local = 0.0, total = 0.0;
    for (i = rank; i < n; i += size) {
        local += 4.0 / (1.0 + i * i);
    }
    if (rank == 0) {
        printf("%f\n", total);
    }
    return 0;
}"#;

const SECOND_BUFFER: &str = r#"int main(int argc, char **argv) {
    int rank, size, i;
    double sum = 0.0;
    for (i = 0; i < 256; i++) {
        sum += i * 0.5;
    }
    printf("%f\n", sum);
    return 0;
}"#;

const MID_EDIT_BUFFER: &str = r#"int main(int argc, char **argv) {
    int rank, size;
    double local = 0.0;
    for (int i = rank; i < 100; i += size) {
        local += i;
    // <- cursor here, braces unbalanced
"#;

fn main() {
    let mut args = std::env::args().skip(1);
    let assistant = match args.next() {
        Some(path) => {
            eprintln!("loading model from {path}…");
            MpiRical::load(&path).expect("model loads")
        }
        None => {
            eprintln!("no model given; training a small one (≈1 min)…");
            let ccfg = CorpusConfig {
                programs: 300,
                seed: 99,
                max_tokens: 320,
                threads: 0,
            };
            let (_, dataset, _) = generate_dataset(&ccfg);
            let splits = dataset.split(9);
            let mut cfg = MpiRicalConfig {
                model: ModelConfig {
                    vocab_size: 0,
                    d_model: 48,
                    n_heads: 4,
                    d_ff: 96,
                    n_enc_layers: 1,
                    n_dec_layers: 1,
                    max_enc_len: 256,
                    max_dec_len: 232,
                    dropout: 0.0,
                },
                vocab_min_freq: 1,
                ..Default::default()
            };
            cfg.train.epochs = 3;
            cfg.train.batch_size = 16;
            let (assistant, _) = MpiRical::train(&splits.train, &splits.val, &cfg, |e| {
                eprintln!("  epoch {}: loss {:.3}", e.epoch, e.train_loss);
            });
            assistant
        }
    };

    let buffer = match args.next() {
        Some(path) => std::fs::read_to_string(&path).expect("file readable"),
        None => DEMO_BUFFER.to_string(),
    };

    println!("=== buffer ===\n{buffer}\n");
    println!("=== MPI-RICAL suggestions ===");
    let suggestions = assistant.suggest(&buffer);
    if suggestions.is_empty() {
        println!("(no suggestions — model too small or code already parallel)");
    }
    for s in &suggestions {
        println!("line {:>3}: insert {}", s.line, s.function);
    }

    println!("\n=== predicted parallel program ===");
    println!("{}", assistant.translate(&buffer));

    println!("=== mid-edit buffer (unbalanced braces — TreeSitter-style tolerance) ===");
    let report = assistant.suggest_report(MID_EDIT_BUFFER);
    println!(
        "({} suggestions produced without crashing)",
        report.suggestions.len()
    );
    // ParseHealth narrates how degraded the front-end view was: error and
    // recovery counts plus the dirty line ranges. Suggestions inside a
    // dirty range carry `degraded: true` and sort after the clean ones.
    println!(
        "parse health: {} error(s), {} recovery event(s), dirty lines {:?}",
        report.health.error_count, report.health.recovery_events, report.health.dirty_lines,
    );
    for s in &report.suggestions {
        let tag = if s.degraded { "  [degraded]" } else { "" };
        println!("    line {:>3}: insert {}{tag}", s.line, s.function);
    }

    // Many developers, one model: the service path. All open buffers decode
    // concurrently through the batched lockstep scheduler — shared weight
    // passes, continuous batching — with outputs identical to `suggest`.
    println!("\n=== batched serving: three buffers through one SuggestService ===");
    let mut service = mpirical::SuggestService::new(&assistant);
    let buffers = [
        ("editor A", buffer.as_str()),
        ("editor B", SECOND_BUFFER),
        ("editor C", MID_EDIT_BUFFER),
    ];
    let tickets: Vec<_> = buffers.iter().map(|(_, b)| service.submit(b)).collect();
    service.run();
    for ((who, _), ticket) in buffers.iter().zip(tickets) {
        let SuggestPoll::Done {
            suggestions,
            health,
            ..
        } = service.poll(ticket)
        else {
            panic!("request finished");
        };
        let state = if health.is_clean() {
            "clean parse".to_string()
        } else {
            format!("mid-edit, dirty lines {:?}", health.dirty_lines)
        };
        println!("{who}: {} suggestion(s) ({state})", suggestions.len());
        for s in &suggestions {
            let tag = if s.degraded { "  [degraded]" } else { "" };
            println!("    line {:>3}: insert {}{tag}", s.line, s.function);
        }
    }

    // Editor A retriggers on a keystroke pause: the identical buffer shares
    // its prefilled K/V pages (copy-on-write) instead of re-projecting them.
    let retrigger = service.submit(&buffer);
    service.run();
    assert!(matches!(service.poll(retrigger), SuggestPoll::Done { .. }));
    let stats = service.pool_stats();
    println!(
        "\npaged KV cache: peak {} pages ({} KiB), {} COW copies, {} prefix hit(s)",
        stats.pages_peak,
        stats.peak_bytes() / 1024,
        stats.cow_copies,
        service.prefix_hits(),
    );

    // Serving API v2: a background re-index job churns at Bulk priority;
    // a keystroke-triggered request preempts its lane mid-flight (the
    // bulk job pauses with its KV pages intact and resumes after), a
    // second re-index becomes stale and is cancelled, and the poll states
    // narrate the whole lifecycle.
    println!("\n=== priorities: keystroke preempts a background re-index ===");
    let mut service = mpirical::SuggestService::with_max_batch(&assistant, 1);
    let reindex = service.submit_with(SECOND_BUFFER, SubmitOptions::bulk());
    let stale = service.submit_with(DEMO_BUFFER, SubmitOptions::bulk());
    for _ in 0..3 {
        service.step();
    }
    let keystroke = service.submit(&buffer); // Interactive by default
    service.step();
    match service.poll(keystroke) {
        SuggestPoll::Decoding { partial } => println!(
            "keystroke request: decoding 1 step after submit ({} partial suggestion(s))",
            partial.len()
        ),
        other => println!("keystroke request: {other:?}"),
    }
    if let SuggestPoll::Queued { position } = service.poll(reindex) {
        println!("re-index job: paused at queue position {position} (pages retained)");
    }
    let cancelled = service.cancel(stale);
    println!("stale re-index cancelled: {cancelled}");
    service.run();
    match service.poll(keystroke) {
        SuggestPoll::Done {
            suggestions,
            telemetry,
            ..
        } => println!(
            "keystroke done: {} suggestion(s), {} queue-wait step(s), {} decode step(s)",
            suggestions.len(),
            telemetry.queue_wait_steps,
            telemetry.decode_steps,
        ),
        other => println!("keystroke: {other:?}"),
    }
    match service.poll(reindex) {
        SuggestPoll::Done {
            suggestions,
            telemetry,
            ..
        } => println!(
            "re-index done: {} suggestion(s), preempted {} time(s), output unchanged",
            suggestions.len(),
            telemetry.preemptions,
        ),
        other => println!("re-index: {other:?}"),
    }
    assert!(matches!(service.poll(stale), SuggestPoll::Cancelled));
    println!(
        "scheduler: {} preemption(s), {} live page(s) after drain",
        service.preemptions(),
        service.pool_stats().pages_live,
    );

    // Closed-loop verification: every beam hypothesis is spliced into the
    // buffer and executed on the simulated MPI runtime; suggestions carry
    // the observed verdict and the report aggregates the telemetry. A
    // candidate that deadlocks (or crashes, or diverges from the serial
    // baseline) is demoted below the verified ones regardless of model
    // score.
    println!("\n=== closed-loop verification: execute before you suggest ===");
    let mut verifying = assistant.clone();
    verifying.verify = Some(VerifyOptions {
        rank_counts: vec![2],
        timeout_ms: 500,
        step_limit: 200_000,
        ..VerifyOptions::default()
    });
    for (who, buf) in buffers {
        let report = verifying.suggest_report(buf);
        println!("{who}:");
        for s in &report.suggestions {
            let verdict = match s.verdict {
                Some(v) => v.to_string(),
                None => "unverified (past budget)".to_string(),
            };
            println!("    line {:>3}: insert {}  [{verdict}]", s.line, s.function);
        }
        if let Some(stats) = report.verify {
            println!(
                "    stats: {} hypothesis(es) executed across {} simulator run(s) — \
                 {} verified, {} deadlock, {} crash, {} type-mismatch, {} diverged, \
                 {} timeout, {} not-executable, {} unverified",
                stats.hypotheses,
                stats.sim_runs,
                stats.verified,
                stats.deadlock,
                stats.rank_crash,
                stats.type_mismatch,
                stats.diverged,
                stats.timeout,
                stats.not_executable,
                stats.unverified,
            );
        }
    }
}
