//! An editor-side client session against a running `serve` daemon.
//!
//! Start the daemon in one terminal:
//!
//! ```text
//! cargo run --release -p mpirical-server --bin serve -- --demo
//! ```
//!
//! then run this example in another:
//!
//! ```text
//! cargo run --release -p mpirical-server --example ide_client
//! cargo run --release -p mpirical-server --example ide_client -- 127.0.0.1:7117 --drain
//! ```
//!
//! It plays the IDE's part: a background bulk re-index job, a
//! keystroke-triggered interactive request streamed token by token, a
//! cancellation, and a final `Stats` snapshot (plus `--drain` to shut the
//! daemon down gracefully).

use mpirical_server::{Client, SubmitOptions, Submitted, SuggestPoll};
use std::time::Duration;

fn main() -> std::io::Result<()> {
    let mut addr = "127.0.0.1:7117".to_string();
    let mut drain = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--drain" => drain = true,
            other => addr = other.to_string(),
        }
    }

    let mut client = Client::connect(&addr)?;
    println!("connected to {addr}");

    // A background job the editor runs while the user types.
    let reindex = submit(
        &mut client,
        "int main() { double local = 0.0; return 0; }",
        SubmitOptions::bulk(),
    )?;

    // The keystroke request: interactive class, streamed while decoding.
    let keystroke = submit(
        &mut client,
        "int main() { int rank; return 0; }",
        SubmitOptions::interactive(),
    )?;
    loop {
        match client.poll(keystroke)? {
            SuggestPoll::Queued { position } => {
                println!("keystroke: queued at position {position}");
            }
            SuggestPoll::Decoding { partial } => {
                println!(
                    "keystroke: decoding, {} suggestion(s) so far",
                    partial.len()
                );
            }
            SuggestPoll::Done {
                suggestions,
                telemetry,
                health,
                ..
            } => {
                for s in &suggestions {
                    println!("  insert {} at line {}", s.function, s.line);
                }
                println!(
                    "keystroke: done in {} decode steps ({} queue-wait), parse {}",
                    telemetry.decode_steps,
                    telemetry.queue_wait_steps,
                    if health.is_clean() {
                        "clean"
                    } else {
                        "degraded"
                    },
                );
                break;
            }
            other => {
                println!("keystroke: {other:?}");
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    // The editor closed the re-indexed file: stop paying for it.
    let was_pending = client.cancel(reindex)?;
    println!("re-index cancel landed on live work: {was_pending}");
    match client.wait(reindex)? {
        SuggestPoll::Cancelled => println!("re-index: cancelled"),
        SuggestPoll::Done { suggestions, .. } => {
            println!(
                "re-index: finished first ({} suggestions)",
                suggestions.len()
            );
        }
        other => println!("re-index: {other:?}"),
    }

    let stats = client.stats()?;
    println!(
        "stats: {} workers, {} pending, pool live/peak {}/{} pages, prefix hit rate {:.2}, \
         {} conns / {} frames / {} sheds / {} malformed",
        stats.workers,
        stats.pending,
        stats.pool.pages_live,
        stats.pool.pages_peak,
        stats.prefix.hit_rate(),
        stats.counters.connections,
        stats.counters.frames,
        stats.counters.sheds,
        stats.counters.malformed,
    );

    if drain {
        let pool = client.drain()?;
        println!("drained: {} live pages (must be 0)", pool.pages_live);
    }
    Ok(())
}

fn submit(client: &mut Client, source: &str, options: SubmitOptions) -> std::io::Result<u64> {
    match client.submit_with(source, options)? {
        Submitted::Ticket(id) => Ok(id),
        Submitted::Busy { retry_after_steps } => Err(std::io::Error::other(format!(
            "daemon is shedding load (retry after ~{retry_after_steps} steps)"
        ))),
        Submitted::Rejected { reason } => Err(std::io::Error::other(reason)),
    }
}
