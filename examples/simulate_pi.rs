//! Run the paper's running example — distributed pi via Riemann sums — on
//! the simulated MPI runtime at several world sizes, demonstrating the
//! §VI-C validation substrate: answers must be identical across
//! decompositions, and a deliberately broken variant must be caught.
//!
//! ```text
//! cargo run --release --example simulate_pi
//! ```

use mpirical_interp::{run_program, run_source, RunConfig};
use std::time::Duration;

const PI_SRC: &str = r#"#include <mpi.h>
#include <stdio.h>
int main(int argc, char **argv) {
    int rank, size, i;
    int n = 100000;
    double local = 0.0, pi, x, step;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    step = 1.0 / (double)n;
    for (i = rank; i < n; i += size) {
        x = (i + 0.5) * step;
        local += 4.0 / (1.0 + x * x);
    }
    local = local * step;
    MPI_Reduce(&local, &pi, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        printf("pi = %.10f\n", pi);
    }
    MPI_Finalize();
    return 0;
}"#;

/// The same program with the Reduce misplaced *inside* the loop — the kind
/// of mistake the paper's intro says programmers make (and a deadlock on
/// more than one rank, since rank 0 reduces n/size times but others n/size'
/// times... here it simply produces a wrong answer on 1 rank and hangs on
/// several, which the simulator turns into a clean error).
const BROKEN_SRC: &str = r#"#include <mpi.h>
#include <stdio.h>
int main(int argc, char **argv) {
    int rank, size, i;
    int n = 100;
    double local = 0.0, pi, x, step;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    step = 1.0 / (double)n;
    for (i = rank; i < n; i += size) {
        x = (i + 0.5) * step;
        local += 4.0 / (1.0 + x * x);
        MPI_Reduce(&local, &pi, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);
    }
    if (rank == 0) {
        printf("pi = %.10f\n", pi);
    }
    MPI_Finalize();
    return 0;
}"#;

fn main() {
    println!("distributed pi on the simulated MPI runtime:");
    let mut reference = None;
    for nranks in [1usize, 2, 4, 8] {
        let t0 = std::time::Instant::now();
        let out = run_source(PI_SRC, nranks).expect("pi program runs");
        let line = out.rank_outputs[0].trim().to_string();
        println!(
            "  {nranks} ranks: {line}   ({:.0} ms)",
            t0.elapsed().as_secs_f64() * 1e3
        );
        match &reference {
            None => reference = Some(line),
            Some(r) => assert_eq!(
                r, &line,
                "domain decomposition changed the answer — validation failed"
            ),
        }
    }
    println!("  answer is identical on every world size ✓");

    println!("\nmisplaced MPI_Reduce (inside the loop):");
    let prog = mpirical_cparse::parse_strict(BROKEN_SRC).unwrap();
    let mut cfg = RunConfig::new(4);
    cfg.timeout = Duration::from_millis(500);
    match run_program(&prog, &cfg) {
        Ok(out) => println!("  ran, but output is wrong: {}", out.rank_outputs[0].trim()),
        Err(e) => println!("  caught by the simulator: {e}"),
    }
}
