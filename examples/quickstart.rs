//! Quickstart: the whole MPI-RICAL pipeline in under a minute.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a small synthetic MPICodeCorpus, runs the paper's Figure-4
//! dataset pipeline, trains a miniature assistant for one epoch, and asks it
//! to suggest MPI calls for a serial program.

use mpirical::{MpiRical, MpiRicalConfig};
use mpirical_corpus::{generate_dataset, CorpusConfig};
use mpirical_model::ModelConfig;

fn main() {
    // 1. Corpus + dataset (paper §V).
    let ccfg = CorpusConfig {
        programs: 150,
        seed: 7,
        max_tokens: 320,
        threads: 0,
    };
    let (corpus, dataset, report) = generate_dataset(&ccfg);
    println!(
        "corpus: {} programs → dataset: {} records ({} dropped by the 320-token gate)",
        corpus.len(),
        dataset.len(),
        report.token_exclusions
    );
    let splits = dataset.split(42);

    // 2. Train a miniature assistant (paper §IV/§VI — scaled down to run in
    //    seconds; see `repro fig5` for the real configuration).
    let mut cfg = MpiRicalConfig {
        model: ModelConfig {
            vocab_size: 0,
            d_model: 32,
            n_heads: 2,
            d_ff: 64,
            n_enc_layers: 1,
            n_dec_layers: 1,
            max_enc_len: 256,
            max_dec_len: 232,
            dropout: 0.0,
        },
        vocab_min_freq: 1,
        ..Default::default()
    };
    cfg.train.epochs = 2;
    cfg.train.batch_size = 8;
    let (assistant, _) = MpiRical::train(&splits.train, &splits.val, &cfg, |e| {
        println!(
            "epoch {}: train loss {:.3}, val loss {:.3}",
            e.epoch, e.train_loss, e.val_loss
        );
    });

    // 3. Ask for suggestions on a serial program (paper Fig. 2).
    let serial = r#"int main(int argc, char **argv) {
    int rank, size, i;
    double local = 0.0, total = 0.0;
    for (i = rank; i < 1000; i += size) {
        local += i * 0.5;
    }
    if (rank == 0) {
        printf("total = %f\n", total);
    }
    return 0;
}"#;
    println!("\nsuggestions for the serial program:");
    let suggestions = assistant.suggest(serial);
    if suggestions.is_empty() {
        println!("  (none — the quickstart model is tiny; run `repro table2` for a trained one)");
    }
    for s in &suggestions {
        println!("  insert {} at line {}", s.function, s.line);
    }
}
