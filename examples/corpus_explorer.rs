//! Explore the synthetic MPICodeCorpus: generate programs, print the paper's
//! corpus statistics (Tables Ia/Ib, Figure 3), and show one example's
//! journey through the Figure-4 pipeline (standardize → remove → X-SBT).
//!
//! ```text
//! cargo run --release --example corpus_explorer [n_programs]
//! ```

use mpirical::{histogram, table};
use mpirical_corpus::{generate_dataset, CorpusConfig};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let ccfg = CorpusConfig {
        programs: n,
        seed: 1234,
        max_tokens: 320,
        threads: 0,
    };
    let (corpus, dataset, report) = generate_dataset(&ccfg);
    let stats = corpus.stats();

    println!("== corpus of {} programs ==", corpus.len());
    let rows = vec![
        vec!["<= 10".to_string(), stats.lengths.le_10.to_string()],
        vec!["11-50".to_string(), stats.lengths.from_11_to_50.to_string()],
        vec!["51-99".to_string(), stats.lengths.from_51_to_99.to_string()],
        vec![">= 100".to_string(), stats.lengths.ge_100.to_string()],
    ];
    print!("{}", table(&["# Line", "Amount"], &rows));

    println!("\n== MPI Common Core (per-file) ==");
    let rows: Vec<Vec<String>> = stats
        .common_core_rows()
        .into_iter()
        .map(|(f, c)| vec![f.to_string(), c.to_string()])
        .collect();
    print!("{}", table(&["Function", "Amount"], &rows));

    println!("\n== Init..Finalize span ratio ==");
    let labels: Vec<String> = (0..10)
        .map(|i| format!("{:.1}-{:.1}", i as f64 / 10.0, (i + 1) as f64 / 10.0))
        .collect();
    print!(
        "{}",
        histogram(&stats.init_finalize_ratio_hist, &labels, 40)
    );

    println!(
        "\npipeline: {} raw → {} records ({} token-excluded, {} unparsed)",
        report.raw_programs, report.dataset_records, report.token_exclusions, report.parse_failures
    );

    if let Some(r) = dataset.records.first() {
        println!("\n== record {} (schema {}) ==", r.id, r.schema);
        println!("--- label (standardized original) ---");
        println!("{}", r.label_code);
        println!("--- input (MPI removed) ---");
        println!("{}", r.input_code);
        println!("--- labelled MPI calls ---");
        for c in &r.mpi_calls {
            println!("  {} @ line {}", c.name, c.line);
        }
        println!("--- X-SBT (first 120 chars) ---");
        let xs: String = r.input_xsbt.chars().take(120).collect();
        println!("  {xs}…");
    }
}
