//! Train a small-but-real MPI-RICAL assistant and save the artifact — the
//! longer-running companion to `quickstart` (≈10–20 minutes on one core).
//!
//! ```text
//! cargo run --release --example train_small [out.json]
//! ```
//!
//! Prints the Figure-5 curves while training and a Table-II evaluation of
//! the held-out test split at the end.

use mpirical::{evaluate_dataset, render_table_two, MpiRical, MpiRicalConfig};
use mpirical_corpus::{generate_dataset, CorpusConfig};
use mpirical_model::{ModelConfig, TrainConfig};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/mpirical-small.json".to_string());

    let ccfg = CorpusConfig {
        programs: 2_000,
        seed: 0xC0FFEE,
        max_tokens: 320,
        threads: 0,
    };
    eprintln!("generating corpus ({} programs)…", ccfg.programs);
    let (_, dataset, report) = generate_dataset(&ccfg);
    eprintln!(
        "dataset: {} records ({} token-excluded)",
        dataset.len(),
        report.token_exclusions
    );
    let splits = dataset.split(0xC0FFEE);

    let cfg = MpiRicalConfig {
        model: ModelConfig {
            vocab_size: 0,
            d_model: 64,
            n_heads: 4,
            d_ff: 128,
            n_enc_layers: 2,
            n_dec_layers: 2,
            max_enc_len: 256,
            max_dec_len: 232,
            dropout: 0.0,
        },
        train: TrainConfig {
            epochs: 5,
            batch_size: 16,
            lr: 6e-4,
            warmup_steps: 60,
            weight_decay: 0.01,
            grad_clip: 1.0,
            threads: 0,
            seed: 0xC0FFEE,
            validate: true,
        },
        ..Default::default()
    };

    let t0 = std::time::Instant::now();
    let (assistant, train_report) = MpiRical::train(&splits.train, &splits.val, &cfg, |e| {
        eprintln!(
            "epoch {}: train {:.4} | val {:.4} | seq-acc {:.3} | tok-acc {:.3} ({:.0}s)",
            e.epoch,
            e.train_loss,
            e.val_loss,
            e.val_seq_acc,
            e.val_tok_acc,
            t0.elapsed().as_secs_f64()
        );
    });
    eprintln!(
        "trained {} steps in {:.0}s",
        train_report.steps,
        t0.elapsed().as_secs_f64()
    );

    assistant.save(&out_path).expect("artifact saves");
    eprintln!("saved to {out_path}");

    let (eval, _) = evaluate_dataset(&assistant, &splits.test);
    println!(
        "\nTable II on the test split ({} evaluated / {} skipped):",
        eval.evaluated, eval.skipped
    );
    print!("{}", render_table_two(&eval.table));
}
