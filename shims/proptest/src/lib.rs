//! Offline stand-in for `proptest`, implementing the subset this workspace
//! uses: the `proptest!` macro (with `#![proptest_config(…)]`), range /
//! `Just` / tuple / `prop_oneof!` / regex-string strategies,
//! `prop_map` / `prop_flat_map`, `proptest::collection::vec`, `any::<bool>()`,
//! and panic-based `prop_assert!` / `prop_assert_eq!`.
//!
//! Divergence from real proptest: cases are sampled from a fixed seed
//! derived from the test name (deterministic across runs), and there is no
//! shrinking — a failing case panics with the generated inputs still bound,
//! so the assertion message is the diagnostic. Like real proptest, the
//! `PROPTEST_CASES` environment variable overrides the configured case
//! count (CI uses it to elevate coverage on the property suites).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The RNG threaded through strategy generation.
pub type TestRng = StdRng;

/// Runner configuration (`cases` = iterations per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// The case count the harness actually runs: the `PROPTEST_CASES`
    /// environment variable overrides whatever the test configured, so CI
    /// can elevate coverage (`PROPTEST_CASES=512 cargo test …`) without
    /// touching test code — mirroring real proptest's env override.
    /// Unset or unparsable values fall back to `self.cases`.
    pub fn effective_cases(&self) -> u32 {
        self.cases_from(std::env::var("PROPTEST_CASES").ok().as_deref())
    }

    /// [`effective_cases`](Self::effective_cases) with the override value
    /// passed explicitly (pure, so tests need not mutate the process
    /// environment — concurrent `setenv` is racy under the parallel test
    /// harness).
    fn cases_from(&self, env: Option<&str>) -> u32 {
        env.and_then(|v| v.trim().parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Derive a stable per-test seed from its name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Construct the harness RNG (used by the `proptest!` expansion, which
/// cannot name `rand` — consumer crates don't depend on it).
pub fn new_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// A generator of test values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! range_incl_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_incl_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Box a strategy for heterogeneous collections (`prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(
            !self.0.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64);

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Regex-ish string strategies
// ---------------------------------------------------------------------------

/// `&str` acts as a pattern strategy producing matching `String`s.
///
/// Supported pattern subset (what the workspace uses, a little generalized):
/// character classes `[a-z0-9_]`, the printable-class escape `\PC`, literal
/// characters, and the quantifiers `{n}`, `{m,n}`, `*` (0..=32), `+`
/// (1..=32). Everything else is treated as a literal.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (atom, quant) in &atoms {
            let n = match quant {
                Quant::One => 1,
                Quant::Exactly(n) => *n,
                Quant::Between(lo, hi) => rng.gen_range(*lo..=*hi),
                Quant::Star => rng.gen_range(0usize..=32),
                Quant::Plus => rng.gen_range(1usize..=32),
            };
            for _ in 0..n {
                match atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(chars) => {
                        out.push(chars[rng.gen_range(0..chars.len())]);
                    }
                }
            }
        }
        out
    }
}

enum Atom {
    Literal(char),
    Class(Vec<char>),
}

enum Quant {
    One,
    Exactly(usize),
    Between(usize, usize),
    Star,
    Plus,
}

fn printable_ascii() -> Vec<char> {
    (0x20u8..0x7F).map(|b| b as char).collect()
}

fn parse_pattern(pat: &str) -> Vec<(Atom, Quant)> {
    let chars: Vec<char> = pat.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                        for c in lo..=hi {
                            if let Some(c) = char::from_u32(c) {
                                set.push(c);
                            }
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                Atom::Class(set)
            }
            '\\' => {
                // `\PC` (printable) or an escaped literal.
                if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                    i += 3;
                    Atom::Class(printable_ascii())
                } else {
                    let c = *chars.get(i + 1).unwrap_or(&'\\');
                    i += 2;
                    Atom::Literal(c)
                }
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let quant = match chars.get(i) {
            Some('*') => {
                i += 1;
                Quant::Star
            }
            Some('+') => {
                i += 1;
                Quant::Plus
            }
            Some('{') => {
                let close = chars[i..].iter().position(|&c| c == '}').unwrap_or(0) + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                if let Some((lo, hi)) = body.split_once(',') {
                    Quant::Between(
                        lo.trim().parse().unwrap_or(0),
                        hi.trim().parse().unwrap_or(1),
                    )
                } else {
                    Quant::Exactly(body.trim().parse().unwrap_or(1))
                }
            }
            _ => Quant::One,
        };
        out.push((atom, quant));
    }
    out
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Sizes accepted by [`vec()`]: a fixed length or a range of lengths.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Panic-based stand-in for proptest's `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Panic-based stand-in for proptest's `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies (unweighted subset).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::boxed($s)),+])
    };
}

/// The property-test harness macro.
///
/// Each `#[test] fn name(arg in strategy, …) { body }` item becomes a
/// plain test running `cases` seeded samples of the strategies through the
/// body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng: $crate::TestRng =
                    $crate::new_rng($crate::seed_for(stringify!($name)));
                for __case in 0..cfg.effective_cases() {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Everything a test module needs via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, Just, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng: super::TestRng = rand::SeedableRng::seed_from_u64(1);
        for _ in 0..100 {
            let x = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&x));
            let v = super::collection::vec(0i64..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&e| (0..10).contains(&e)));
            let s = "[a-c]{2}".generate(&mut rng);
            assert_eq!(s.len(), 2);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let p = "\\PC*".generate(&mut rng);
            assert!(p.len() <= 32);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn proptest_cases_env_overrides_configured_count() {
        // Exercise the pure resolver rather than mutating the process
        // environment (setenv races with parallel tests reading it).
        let cfg = ProptestConfig::with_cases(7);
        assert_eq!(cfg.cases_from(None), 7);
        assert_eq!(cfg.cases_from(Some("512")), 512);
        assert_eq!(cfg.cases_from(Some(" 32 ")), 32, "whitespace tolerated");
        assert_eq!(
            cfg.cases_from(Some("not-a-number")),
            7,
            "garbage falls back"
        );
        assert_eq!(cfg.cases_from(Some("0")), 7, "zero cases is meaningless");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_and_binds(a in 0u64..100, b in prop_oneof![Just(1u32), Just(2u32)]) {
            prop_assert!(a < 100);
            prop_assert!(b == 1 || b == 2, "b = {}", b);
        }

        #[test]
        fn maps_compose(v in super::collection::vec(0i64..5, 1..4)) {
            let doubled = (0i64..5).prop_map(|x| x * 2);
            let mut rng: super::TestRng = rand::SeedableRng::seed_from_u64(9);
            prop_assert!(doubled.generate(&mut rng) % 2 == 0);
            prop_assert!(!v.is_empty());
        }
    }
}
