//! Offline stand-in for `rand` 0.8, implementing the subset this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen_range, gen_bool}` over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded via splitmix64 — different stream
//! than the real crate's ChaCha12, but everything in this workspace relies
//! only on *seed-stability within one build*, which this provides.

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

fn uniform_u64<R: RngCore>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    // Modulo reduction: the bias is ≤ width/2^64, far below anything the
    // workspace's statistical tests can resolve.
    rng.next_u64() % width
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64(rng, width);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                let off = uniform_u64(rng, width as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range empty range");
                let unit = rng.next_f64() as $t;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
float_sample_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, seed-stable.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seed_stable() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
