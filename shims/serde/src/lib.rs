//! Offline stand-in for `serde`, implementing the subset this workspace uses.
//!
//! The build environment has no crates.io access, so instead of the real
//! serde's zero-copy visitor architecture, this shim routes everything
//! through a self-describing [`Value`] tree: `Serialize` renders a value
//! into the tree, `Deserialize` reads one back out. `serde_json` (also
//! shimmed) converts between [`Value`] and JSON text using the same data
//! layout conventions as real serde (structs as maps, unit enum variants as
//! strings, data-carrying variants as single-key maps, newtype structs as
//! their payload), so serialized artifacts remain standard JSON.
//!
//! Supported via `#[derive(Serialize, Deserialize)]` (see `serde_derive`):
//! structs with named fields, tuple structs, enums with unit / tuple /
//! struct variants, and the `#[serde(skip)]` field attribute (skipped on
//! write, `Default::default()` on read).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Self-describing serialized value (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers (kept separate so `u64` round-trips exactly).
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// Look up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    pub msg: String,
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Build a [`DeError`].
pub fn de_error(msg: impl Into<String>) -> DeError {
    DeError { msg: msg.into() }
}

/// Render `self` into the shim data model.
pub trait Serialize {
    fn ser(&self) -> Value;
}

/// Rebuild `Self` from the shim data model.
pub trait Deserialize: Sized {
    fn de(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Derive support helpers
// ---------------------------------------------------------------------------

/// Deserialize a named struct field from a map value. A missing key is
/// surfaced to `T` as `Null` (so `Option` fields tolerate absence).
pub fn de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v {
        Value::Map(_) => match v.get(name) {
            Some(field) => T::de(field).map_err(|e| de_error(format!("field `{name}`: {}", e.msg))),
            None => T::de(&Value::Null).map_err(|_| de_error(format!("missing field `{name}`"))),
        },
        other => Err(de_error(format!(
            "expected map for struct, got {}",
            other.type_name()
        ))),
    }
}

/// Deserialize a `#[serde(default)]` struct field: a missing key yields
/// `Default::default()` instead of an error.
pub fn de_field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, DeError> {
    match v {
        Value::Map(_) => match v.get(name) {
            Some(field) => T::de(field).map_err(|e| de_error(format!("field `{name}`: {}", e.msg))),
            None => Ok(T::default()),
        },
        other => Err(de_error(format!(
            "expected map for struct, got {}",
            other.type_name()
        ))),
    }
}

/// Deserialize element `i` of a sequence value (tuple structs/variants).
pub fn de_elem<T: Deserialize>(v: &Value, i: usize) -> Result<T, DeError> {
    match v {
        Value::Seq(items) => match items.get(i) {
            Some(item) => T::de(item),
            None => Err(de_error(format!("missing tuple element {i}"))),
        },
        other => Err(de_error(format!(
            "expected sequence, got {}",
            other.type_name()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn de(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| de_error("integer out of range")),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| de_error("integer out of range")),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(de_error(format!(
                        "expected unsigned integer, got {}", other.type_name()
                    ))),
                }
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value {
                let x = *self as i64;
                if x < 0 { Value::Int(x) } else { Value::UInt(x as u64) }
            }
        }
        impl Deserialize for $t {
            fn de(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| de_error("integer out of range")),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| de_error("integer out of range")),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(de_error(format!(
                        "expected integer, got {}", other.type_name()
                    ))),
                }
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn de(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    // Real serde_json writes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(de_error(format!(
                        "expected float, got {}", other.type_name()
                    ))),
                }
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn ser(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de_error(format!(
                "expected bool, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for String {
    fn ser(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(de_error(format!(
                "expected string, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for str {
    fn ser(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Real serde borrows from the input; this shim's `Value` tree is
    /// transient, so the string is leaked instead. Only reachable for types
    /// that embed `&'static str` (compiled-in tables that are serialized for
    /// reporting but never read back in practice).
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(de_error(format!(
                "expected string, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for char {
    fn ser(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(de_error(format!(
                "expected char, got {}",
                other.type_name()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn de(v: &Value) -> Result<Self, DeError> {
        T::de(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn ser(&self) -> Value {
        match self {
            Some(x) => x.ser(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::de(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::de).collect(),
            other => Err(de_error(format!(
                "expected sequence, got {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn ser(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn ser(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::de(item)?;
                }
                Ok(out)
            }
            other => Err(de_error(format!(
                "expected sequence of {N}, got {}",
                other.type_name()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn ser(&self) -> Value {
        Value::Seq(vec![self.0.ser(), self.1.ser()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn de(v: &Value) -> Result<Self, DeError> {
        Ok((de_elem(v, 0)?, de_elem(v, 1)?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn ser(&self) -> Value {
        Value::Seq(vec![self.0.ser(), self.1.ser(), self.2.ser()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn de(v: &Value) -> Result<Self, DeError> {
        Ok((de_elem(v, 0)?, de_elem(v, 1)?, de_elem(v, 2)?))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn ser(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.ser())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::de(val)?)))
                .collect(),
            Value::Null => Ok(BTreeMap::new()),
            other => Err(de_error(format!("expected map, got {}", other.type_name()))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn ser(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.ser())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::de(val)?)))
                .collect(),
            Value::Null => Ok(HashMap::new()),
            other => Err(de_error(format!("expected map, got {}", other.type_name()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::de(&42u64.ser()).unwrap(), 42);
        assert_eq!(i64::de(&(-7i64).ser()).unwrap(), -7);
        assert_eq!(f32::de(&1.5f32.ser()).unwrap(), 1.5);
        assert!(bool::de(&true.ser()).unwrap());
        assert_eq!(String::de(&"hi".to_string().ser()).unwrap(), "hi");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1usize, 2, 3];
        assert_eq!(Vec::<usize>::de(&v.ser()).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::de(&o.ser()).unwrap(), None);
        let t = (3u32, "x".to_string());
        assert_eq!(<(u32, String)>::de(&t.ser()).unwrap(), t);
        let a = [1usize, 2, 3];
        assert_eq!(<[usize; 3]>::de(&a.ser()).unwrap(), a);
    }

    #[test]
    fn missing_field_is_null_for_option() {
        let m = Value::Map(vec![]);
        let x: Option<u32> = de_field(&m, "absent").unwrap();
        assert_eq!(x, None);
        assert!(de_field::<u32>(&m, "absent").is_err());
    }
}
