//! Offline stand-in for `parking_lot`: [`Mutex`] and [`RwLock`] whose lock
//! methods return the guard directly (poisoning is swallowed, like
//! parking_lot's no-poisoning semantics) and [`Condvar`] with both untimed
//! [`wait`](Condvar::wait) and deadline-based [`wait_until`](Condvar::wait_until)
//! taking the guard by `&mut`. Backed by `std::sync`.

use std::ops::{Deref, DerefMut};
use std::time::Instant;

/// Mutual exclusion with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard wrapper; holds an `Option` so [`Condvar::wait`] can move the
/// underlying std guard out and back (std's wait API is by-value).
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Non-blocking lock attempt; `None` if another thread holds the lock.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the value it protects.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<'a, T> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<'a, T> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Reader/writer lock with parking_lot's panic-free API: `read()` and
/// `write()` return guards directly, no poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Take a shared read lock; any number of readers may hold it at once.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self
            .inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        RwLockReadGuard { inner }
    }

    /// Take the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self
            .inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        RwLockWriteGuard { inner }
    }

    /// Non-blocking write attempt; `None` if any reader or writer holds the
    /// lock.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(inner) => Some(RwLockWriteGuard { inner }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the lock, returning the value it protects.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<'a, T> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with untimed and deadline-based waits.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar::default()
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified. Spurious wakeups possible, as with any condvar;
    /// callers re-check their predicate in a loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Wait until notified or `deadline` passes. Spurious wakeups possible,
    /// as with any condvar.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = RwLock::new(7);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!((*r1, *r2), (7, 7));
        assert!(l.try_write().is_none(), "readers block the writer");
        drop((r1, r2));
        *l.write() += 1;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn rwlock_writer_excludes_readers_across_threads() {
        let l = Arc::new(RwLock::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *l.write() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 4000, "writes are exclusive, none lost");
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut g = m.lock();
        while !*g {
            assert!(!cv.wait_until(&mut g, deadline).timed_out(), "deadlocked");
        }
        t.join().unwrap();
    }

    #[test]
    fn notify_one_wakes_exactly_one_waiter_at_a_time() {
        // Two waiters each decrement a token counter when woken; tokens are
        // handed out one notify_one() at a time, so the counter never goes
        // negative and both waiters eventually exit.
        let state = Arc::new((Mutex::new(0i32), Condvar::new()));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let state = Arc::clone(&state);
            handles.push(std::thread::spawn(move || {
                let (m, cv) = &*state;
                let mut g = m.lock();
                while *g == 0 {
                    cv.wait(&mut g);
                }
                *g -= 1;
                assert!(*g >= 0, "woke without a token");
            }));
        }
        let (m, cv) = &*state;
        for _ in 0..2 {
            *m.lock() += 1;
            cv.notify_one();
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 0, "each wake consumed exactly one token");
    }

    #[test]
    fn notify_all_wakes_every_waiter() {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let state = Arc::clone(&state);
            handles.push(std::thread::spawn(move || {
                let (m, cv) = &*state;
                let mut g = m.lock();
                while !*g {
                    cv.wait(&mut g);
                }
            }));
        }
        // Give the waiters a moment to park, then release all of them with a
        // single broadcast.
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*state;
        *m.lock() = true;
        cv.notify_all();
        for h in handles {
            h.join().unwrap();
        }
    }
}
