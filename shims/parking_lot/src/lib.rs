//! Offline stand-in for `parking_lot`: [`Mutex`] whose `lock()` returns the
//! guard directly (poisoning is swallowed, like parking_lot's no-poisoning
//! semantics) and [`Condvar`] whose `wait_until` takes the guard by `&mut`
//! and an absolute `Instant` deadline. Backed by `std::sync`.

use std::ops::{Deref, DerefMut};
use std::time::Instant;

/// Mutual exclusion with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard wrapper; holds an `Option` so [`Condvar::wait_until`] can move the
/// underlying std guard out and back (std's wait API is by-value).
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }
}

impl<'a, T> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<'a, T> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with deadline-based waits.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar::default()
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wait until notified or `deadline` passes. Spurious wakeups possible,
    /// as with any condvar.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut g = m.lock();
        while !*g {
            assert!(!cv.wait_until(&mut g, deadline).timed_out(), "deadlocked");
        }
        t.join().unwrap();
    }
}
