//! Offline stand-in for `bytes`: the [`Bytes`] / [`BytesMut`] / [`BufMut`]
//! subset the MPI simulator's wire format uses. `Bytes` is an `Arc<[u8]>`
//! so clones are cheap; `BytesMut` is a `Vec<u8>` builder; `BufMut`
//! provides the little-endian `put_*` writers.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply clonable immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes { data: s.into() }
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Little-endian byte writers (the `put_*` subset).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_read() {
        let mut b = BytesMut::with_capacity(16);
        b.put_i32_le(-7);
        b.put_f64_le(1.5);
        b.put_u8(0xAB);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 13);
        assert_eq!(i32::from_le_bytes(frozen[0..4].try_into().unwrap()), -7);
        assert_eq!(f64::from_le_bytes(frozen[4..12].try_into().unwrap()), 1.5);
        assert_eq!(frozen[12], 0xAB);
        let clone = frozen.clone();
        assert_eq!(&clone[..], &frozen[..]);
    }

    #[test]
    fn chunks_exact_via_deref() {
        let b: Bytes = vec![1u8, 2, 3, 4].into();
        let chunks: Vec<&[u8]> = b.chunks_exact(2).collect();
        assert_eq!(chunks, vec![&[1u8, 2][..], &[3u8, 4][..]]);
    }
}
