//! Offline stand-in for `crossbeam`'s scoped threads, backed by
//! `std::thread::scope` (which did not exist when crossbeam introduced the
//! pattern, but does now).
//!
//! API surface covered: `crossbeam::scope(|s| …)` returning a `Result`,
//! `Scope::spawn(|_| …)`, and `Scope::builder().name(…).spawn(|_| …)`.
//! The closure argument that crossbeam passes (a nested-spawn handle) is
//! replaced by a zero-sized [`ScopeHandle`](thread::ScopeHandle); every call site in this
//! workspace ignores it.
//!
//! Divergence from real crossbeam: a panicking child thread makes the
//! enclosing `scope` call panic on join (std behavior) instead of returning
//! `Err` — all call sites `.expect()` the result, so both surface the same
//! way.

use std::any::Any;

pub mod thread {
    use super::*;

    /// Token passed to spawned closures in place of crossbeam's nested
    /// spawn handle.
    pub struct ScopeHandle;

    /// A scope in which scoped threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to join a scoped thread (joined implicitly at scope end if
    /// dropped).
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Named-thread builder mirroring `crossbeam::thread::ScopedThreadBuilder`.
    pub struct ScopedThreadBuilder<'scope, 'env: 'scope> {
        scope: &'scope std::thread::Scope<'scope, 'env>,
        builder: std::thread::Builder,
    }

    impl<'scope, 'env> ScopedThreadBuilder<'scope, 'env> {
        pub fn name(mut self, name: String) -> Self {
            self.builder = self.builder.name(name);
            self
        }

        pub fn spawn<F, T>(self, f: F) -> std::io::Result<ScopedJoinHandle<'scope, T>>
        where
            F: FnOnce(&ScopeHandle) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self
                .builder
                .spawn_scoped(self.scope, move || f(&ScopeHandle))?;
            Ok(ScopedJoinHandle { inner })
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&ScopeHandle) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&ScopeHandle)),
            }
        }

        pub fn builder(&self) -> ScopedThreadBuilder<'scope, 'env> {
            ScopedThreadBuilder {
                scope: self.inner,
                builder: std::thread::Builder::new(),
            }
        }
    }

    /// Create a scope for spawning threads that may borrow from the caller.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn threads_share_borrowed_data_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        super::scope(|s| {
            for (slot, &x) in out.iter_mut().zip(&data) {
                s.spawn(move |_| {
                    *slot = x * 10;
                });
            }
        })
        .expect("threads join");
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn builder_names_thread() {
        let name = super::scope(|s| {
            s.builder()
                .name("worker-7".to_string())
                .spawn(|_| std::thread::current().name().map(str::to_string))
                .expect("spawn")
                .join()
                .expect("join")
        })
        .expect("scope");
        assert_eq!(name.as_deref(), Some("worker-7"));
    }
}
