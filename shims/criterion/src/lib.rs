//! Offline stand-in for `criterion`: a minimal wall-clock benchmarking
//! harness with the API subset this workspace's benches use
//! (`benchmark_group`, `bench_function`, `iter`, `iter_batched`,
//! `sample_size`, `throughput`, `black_box`, `criterion_group!`,
//! `criterion_main!`).
//!
//! Measurement model: warm up briefly, then time `sample_size` samples and
//! report min / median / mean per iteration. No statistics beyond that, no
//! HTML reports — results print to stdout, one line per benchmark.
//! A positional CLI argument filters benchmarks by substring, matching
//! `cargo bench -- <filter>` usage.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted, not used by the shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation (accepted; reported as-is).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.default_sample_size;
        self.run_one(&id, sample_size, None, f);
        self
    }

    fn run_one<F>(&self, id: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id, throughput);
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        let throughput = self.throughput;
        self.criterion.run_one(&full, n, throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` per call: brief warmup, then `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + calibration: find how many iterations fill ~5ms.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(5).as_nanos() / once.as_nanos()).max(1) as usize;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample as u32);
        }
    }

    /// Time `routine` on fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{id:<44} (no samples)");
            return;
        }
        self.samples.sort();
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        let extra = match throughput {
            Some(Throughput::Bytes(b)) => {
                let gbps = b as f64 / median.as_secs_f64() / 1e9;
                format!("  ({gbps:.2} GB/s)")
            }
            Some(Throughput::Elements(e)) => {
                let meps = e as f64 / median.as_secs_f64() / 1e6;
                format!("  ({meps:.2} Melem/s)")
            }
            None => String::new(),
        };
        println!(
            "{id:<44} min {}  median {}  mean {}{extra}",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Collect benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples_and_reports() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 5,
        };
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        let mut ran = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("zzz_only".into()),
            default_sample_size: 3,
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            b.iter(|| ran = true);
        });
        assert!(!ran, "filtered-out benchmark must not run");
    }
}
