//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! shim `serde` crate's `Value` data model, by walking the raw
//! `proc_macro::TokenStream` directly (the environment has no `syn`/`quote`).
//!
//! Supported shapes — exactly what this workspace uses:
//!
//! * structs with named fields (plus the `#[serde(skip)]` field attribute:
//!   omitted on serialize, `Default::default()` on deserialize);
//! * tuple structs (1-field newtypes serialize transparently as their
//!   payload, larger ones as sequences);
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde: `"Variant"`, `{"Variant": payload}`, `{"Variant": {…}}`).
//!
//! Generics and non-`serde` field attributes are rejected loudly rather
//! than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
    /// `#[serde(default)]`: missing key deserializes to `Default::default()`.
    default: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

/// Skip one attribute (`#[...]`) starting at `i`; returns the new index and
/// the `(skip, default)` flags if it was a `#[serde(...)]` attribute.
fn skip_attribute(tokens: &[TokenTree], i: usize) -> (usize, bool, bool) {
    debug_assert!(matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#'));
    let mut skip = false;
    let mut default = false;
    if let TokenTree::Group(g) = &tokens[i + 1] {
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    for t in args.stream() {
                        match &t {
                            TokenTree::Ident(a) if a.to_string() == "skip" => skip = true,
                            TokenTree::Ident(a) if a.to_string() == "default" => default = true,
                            TokenTree::Punct(p) if p.as_char() == ',' => {}
                            other => {
                                panic!("serde shim derive: unsupported serde attribute `{other}`")
                            }
                        }
                    }
                }
            }
        }
    }
    (i + 2, skip, default)
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Consume type tokens until a comma at angle-bracket depth 0 (or the end).
/// Parens/brackets/braces arrive as single `Group` tokens, so only `<`/`>`
/// need explicit depth tracking.
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parse a `{ name: Type, ... }` field list (body of a named struct or a
/// struct enum variant).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        let mut default = false;
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            let (ni, s, d) = skip_attribute(&tokens, i);
            i = ni;
            skip |= s;
            default |= d;
        }
        i = skip_visibility(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break; // trailing comma / end
        };
        let name = name.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field `{name}`, got {other:?}"),
        }
        i = skip_type(&tokens, i);
        fields.push(Field {
            name,
            skip,
            default,
        });
        // Skip the separating comma, if any.
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Count the fields of a tuple struct/variant `( ... )` body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            let (ni, _, _) = skip_attribute(&tokens, i);
            i = ni;
        }
        i = skip_visibility(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        i = skip_type(&tokens, i);
        count += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_enum_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            let (ni, _, _) = skip_attribute(&tokens, i);
            i = ni;
        }
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde shim derive: explicit discriminants unsupported (variant `{name}`)");
        }
        variants.push(Variant { name, kind });
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        let (ni, _, _) = skip_attribute(&tokens, i);
        i = ni;
    }
    i = skip_visibility(&tokens, i);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` unsupported");
    }
    let shape = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde shim derive: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_enum_variants(g.stream()))
            }
            other => panic!("serde shim derive: unsupported enum body {other:?}"),
        },
        other => panic!("serde shim derive: cannot derive for `{other}`"),
    };
    Parsed { name, shape }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from("let mut m: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "m.push((\"{0}\".to_string(), ::serde::Serialize::ser(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Map(m)");
            s
        }
        Shape::TupleStruct(1) => "::serde::Serialize::ser(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::ser(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Serialize::ser(__f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let sers: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::ser({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            sers.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "__m.push((\"{0}\".to_string(), ::serde::Serialize::ser({0})));",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ let mut __m: Vec<(String, ::serde::Value)> = Vec::new(); {} ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(__m))]) }},\n",
                            binds.join(", "),
                            pushes.join(" ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn ser(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::std::default::Default::default()", f.name)
                    } else if f.default {
                        format!("{0}: ::serde::de_field_or_default(v, \"{0}\")?", f.name)
                    } else {
                        format!("{0}: ::serde::de_field(v, \"{0}\")?", f.name)
                    }
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::TupleStruct(1) => format!("Ok({name}(::serde::Deserialize::de(v)?))"),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de_elem(v, {i})?"))
                .collect();
            format!("Ok({name}({}))", elems.join(", "))
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"))
                    }
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::de(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::de_elem(__inner, {i})?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}({})),\n",
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: ::std::default::Default::default()", f.name)
                                } else {
                                    format!("{0}: ::serde::de_field(__inner, \"{0}\")?", f.name)
                                }
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(::serde::de_error(format!(\"unknown {name} variant `{{}}`\", __other))),\n\
                 }},\n\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => Err(::serde::de_error(format!(\"unknown {name} variant `{{}}`\", __other))),\n\
                 }}\n\
                 }},\n\
                 __other => Err(::serde::de_error(format!(\"invalid value for enum {name}: {{:?}}\", __other))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn de(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
         #[allow(unused_variables)] let _ = v;\n{body}\n}}\n}}\n"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_item(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde shim derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_item(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde shim derive: generated Deserialize impl parses")
}
