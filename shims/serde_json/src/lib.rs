//! Offline stand-in for `serde_json`: converts between JSON text and the
//! shim `serde` crate's [`Value`] tree.
//!
//! Implements the API surface this workspace uses — [`to_string`],
//! [`from_str`], [`to_writer`], and an [`Error`] that converts into
//! `std::io::Error`. Output conventions match real serde_json: structs as
//! objects, `None` as `null`, non-finite floats as `null`, strings with
//! standard escapes.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.msg)
    }
}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.msg)
    }
}

/// Serialize a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.ser(), &mut out);
    Ok(out)
}

/// Serialize a value as JSON into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::new(e.to_string()))
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::de(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest-roundtrip formatting; force a decimal point
                // so the value re-parses as a float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // matches real serde_json
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                let combined = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("bad surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| Error::new("bad \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos already
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Decode one UTF-8 char (input came from &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for x in [0.1f32, -1.5, 3.4e38, 1e-20, 0.333_333_34] {
            let s = to_string(&x).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(x, back, "{s}");
        }
        // Whole floats keep a decimal point so they stay floats.
        assert_eq!(to_string(&2.0f32).unwrap(), "2.0");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\n\"quoted\"\tλ \\ end\u{01}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1u32, 2], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3]]");
        let back: Vec<Vec<u32>> = from_str(&json).unwrap();
        assert_eq!(v, back);
        let o: Option<Vec<String>> = Some(vec!["a".into()]);
        let back2: Option<Vec<String>> = from_str(&to_string(&o).unwrap()).unwrap();
        assert_eq!(o, back2);
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(s, "é😀");
    }

    #[test]
    fn derive_roundtrip_with_skip_and_default() {
        #[derive(Debug, PartialEq, Default, serde::Serialize, serde::Deserialize)]
        struct Widget {
            name: String,
            count: u32,
            #[serde(skip)]
            cached: Option<u32>,
            #[serde(default)]
            extra: u32,
        }
        let w = Widget {
            name: "x".into(),
            count: 3,
            cached: Some(9),
            extra: 7,
        };
        let json = to_string(&w).unwrap();
        assert!(!json.contains("cached"), "skip field omitted: {json}");
        let back: Widget = from_str(&json).unwrap();
        assert_eq!(back.cached, None, "skip field defaults on load");
        assert_eq!(back.extra, 7);
        // A document written before `extra` existed still deserializes.
        let old: Widget = from_str(r#"{"name":"y","count":1}"#).unwrap();
        assert_eq!(old.extra, 0);
        // But a missing non-default field is an error.
        assert!(from_str::<Widget>(r#"{"name":"y"}"#).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
    }
}
